"""Batch geometry kernels: full ``(n_queries × n_buckets)`` volume matrices.

Every hot path in the reproduction — the Eq. (8) design matrix, histogram
prediction, and ground-truth labeling — reduces to ``Vol(B_j ∩ R_i)`` over
*all* (bucket, query) pairs.  :mod:`repro.geometry.volume` vectorises one
query against many boxes; this module vectorises over *both* axes so an
entire workload is evaluated in a handful of NumPy broadcasts:

* :func:`box_box_volume_matrix` — exact interval-overlap products, any d;
* :func:`box_halfspace_volume_matrix` — the ``2^d`` inclusion–exclusion
  identity evaluated for every (box, halfspace) pair at once;
* :func:`box_ball_volume_matrix` — exact circular-segment areas for
  d ≤ 2, chunked quasi-Monte-Carlo above (same fixed Sobol point set as
  the scalar path, so results stay deterministic and identical);
* :func:`intersection_volume_matrix` — mixed-workload dispatcher that
  groups queries by range type and stitches the kernel outputs back into
  workload order;
* :func:`coverage_matrix` — the design matrix ``Vol(B_j ∩ R_i)/Vol(B_j)``
  clipped to [0, 1];
* :func:`containment_matrix` — batch membership ``1(p_k ∈ R_i)`` for the
  point-support models and the labeling oracle.

Each kernel mirrors the scalar kernel's arithmetic operation-for-operation,
so a matrix row agrees with :func:`repro.geometry.volume
.batch_intersection_volumes` to floating-point noise — the registry-wide
equivalence property test (``tests/core/test_batch_predict.py``) pins this
down to 1e-12.

Peak memory is bounded: kernels materialising an ``(n, m, ·)`` temporary
process queries in chunks of at most :data:`CHUNK_ELEMENTS` float64
elements (~32 MB per temporary by default).
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.ranges import _EPS, Ball, Box, Halfspace, Range
from repro.observability.metrics import default_registry
from repro.geometry.volume import (
    QMC_POINTS,
    _disc_quadrant_area_vec,
    _qmc_unit_points,
    _unit_square_halfspace_fraction,
    batch_intersection_volumes,
)

__all__ = [
    "CHUNK_ELEMENTS",
    "boxes_to_arrays",
    "box_box_volume_matrix",
    "box_halfspace_volume_matrix",
    "box_ball_volume_matrix",
    "intersection_volume_matrix",
    "coverage_matrix",
    "coverage_dot",
    "containment_matrix",
]

#: Upper bound (in float64 elements) on the largest temporary a kernel may
#: materialise at once; bigger workloads are processed in query chunks.
#: 2^22 elements ≈ 32 MB per temporary.
CHUNK_ELEMENTS = 1 << 22

#: Chunk size (in float64 elements) for the fused prediction path: small
#: enough that a chunk's intermediates stay cache-resident, so the kernels
#: run at cache bandwidth instead of DRAM bandwidth.  2^17 elements ≈ 1 MB.
CACHE_ELEMENTS = 1 << 17

# Kernel-layer throughput counters: one inc per entry-point call (never
# per element), so the hot path pays two dictionary updates per workload.
_KERNEL_QUERIES = default_registry().counter(
    "repro_kernel_queries_total",
    "Queries processed by the batch geometry kernels",
    labels=("kernel",),
)
_KERNEL_CHUNKS = default_registry().counter(
    "repro_kernel_chunks_total",
    "Memory-bounded query chunks processed by the batch geometry kernels",
    labels=("kernel",),
)


def _query_chunks(
    n: int, per_query_elements: int, kernel: str = "volume_matrix"
) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` ranges keeping temporaries under budget."""
    step = max(1, CHUNK_ELEMENTS // max(1, int(per_query_elements)))
    if n > 0:
        _KERNEL_CHUNKS.inc(-(-n // step), kernel=kernel)
    for start in range(0, n, step):
        yield start, min(start + step, n)


def boxes_to_arrays(boxes: Sequence[Box]) -> tuple[np.ndarray, np.ndarray]:
    """Stack boxes into ``(n, d)`` low/high coordinate arrays."""
    if len(boxes) == 0:
        raise ValueError("at least one box is required")
    lows = np.stack([b.lows for b in boxes])
    highs = np.stack([b.highs for b in boxes])
    return lows, highs


# ---------------------------------------------------------------------------
# Pairwise kernels
# ---------------------------------------------------------------------------


def box_box_volume_matrix(
    q_lows: np.ndarray, q_highs: np.ndarray, b_lows: np.ndarray, b_highs: np.ndarray
) -> np.ndarray:
    """Exact ``Vol(B_j ∩ Q_i)`` for all pairs of axis-aligned boxes.

    Queries are rows: the result has shape ``(n_queries, n_boxes)``.
    """
    q_lows = np.asarray(q_lows, dtype=float)
    q_highs = np.asarray(q_highs, dtype=float)
    b_lows = np.asarray(b_lows, dtype=float)
    b_highs = np.asarray(b_highs, dtype=float)
    n, d = q_lows.shape
    m = b_lows.shape[0]
    out = np.empty((n, m))
    # One (chunk, m) outer broadcast per dimension: 2-D contiguous inner
    # loops vectorise far better than an (n, m, d) temporary whose tiny
    # innermost axis defeats SIMD.  Widths multiply in dimension order, so
    # the product matches the scalar kernel's prod() bit-for-bit.
    for start, stop in _query_chunks(n, m * d):
        volumes = out[start:stop]
        scratch = np.empty((stop - start, m))
        for k in range(d):
            lo = np.maximum.outer(q_lows[start:stop, k], b_lows[:, k])
            hi = np.minimum.outer(q_highs[start:stop, k], b_highs[:, k], out=scratch)
            np.subtract(hi, lo, out=hi)
            np.maximum(hi, 0.0, out=hi)
            if k == 0:
                volumes[...] = hi
            else:
                np.multiply(volumes, hi, out=volumes)
    return out


def box_halfspace_volume_matrix(
    normals: np.ndarray,
    offsets: np.ndarray,
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    b_volumes: np.ndarray | None = None,
) -> np.ndarray:
    """Exact ``Vol(B_j ∩ {a_i.x >= b_i})`` for all (box, halfspace) pairs.

    The ``2^d`` inclusion–exclusion identity of
    :func:`repro.geometry.volume.box_halfspace_intersection_volume` is
    evaluated with one extra broadcast axis over queries:
    ``O(n · m · 2^d · d)`` work with no Python loop over either axis.
    ``b_volumes`` lets callers with cached box volumes skip the per-call
    ``prod`` recomputation.
    """
    normals = np.asarray(normals, dtype=float)
    offsets = np.asarray(offsets, dtype=float)
    b_lows = np.asarray(b_lows, dtype=float)
    b_highs = np.asarray(b_highs, dtype=float)
    n = normals.shape[0]
    m = b_lows.shape[0]
    widths = b_highs - b_lows
    if b_volumes is None:
        box_volumes = np.prod(widths, axis=1)
    else:
        box_volumes = np.asarray(b_volumes, dtype=float)
    thresholds_all = offsets[:, None] - normals @ b_lows.T  # (n, m)
    # Mirror the per-query kernel: dimensions with a (near-)zero normal
    # component are projected out exactly (the inclusion–exclusion identity
    # is ill-conditioned in tiny coefficients).  The active pattern depends
    # only on the query, so queries are grouped by pattern and each group
    # runs the broadcast kernel in its reduced dimension.
    scales = np.maximum(1.0, np.max(np.abs(normals), axis=1))
    active = np.abs(normals) > 1e-15 * scales[:, None]  # (n, d)
    out = np.empty((n, m))
    patterns, inverse = np.unique(active, axis=0, return_inverse=True)
    for p_idx in range(patterns.shape[0]):
        q_idx = np.flatnonzero(inverse == p_idx)
        mask = patterns[p_idx]
        a_dim = int(mask.sum())
        if a_dim == 0:
            out[q_idx] = np.where(
                thresholds_all[q_idx] <= 0.0, box_volumes[None, :], 0.0
            )
            continue
        out[q_idx] = _halfspace_group_matrix(
            normals[np.ix_(q_idx, np.flatnonzero(mask))],
            thresholds_all[q_idx],
            widths[:, mask],
            box_volumes,
        )
    return out


def _halfspace_group_matrix(
    act_normals: np.ndarray,
    thresholds: np.ndarray,
    act_widths: np.ndarray,
    box_volumes: np.ndarray,
) -> np.ndarray:
    """Inclusion–exclusion over one group of same-active-pattern halfspaces.

    ``act_normals`` is ``(g, a)`` (active dimensions only), ``thresholds``
    ``(g, m)``, ``act_widths`` ``(m, a)``; returns ``(g, m)`` volumes.
    """
    g, a_dim = act_normals.shape
    m = act_widths.shape[0]
    masks = np.arange(1 << a_dim, dtype=np.int64)
    bits = ((masks[:, None] >> np.arange(a_dim)) & 1).astype(float)  # (2^a, a)
    signs = np.where((np.sum(bits, axis=1) % 2) == 0, 1.0, -1.0)
    factorial = math.factorial(a_dim)
    out = np.empty((g, m))
    for start, stop in _query_chunks(g, m * (1 << a_dim)):
        coeffs = act_normals[start:stop, None, :] * act_widths[None, :, :]  # (c, m, a)
        th = thresholds[start:stop]
        negative = coeffs < 0
        th = th - np.sum(np.where(negative, coeffs, 0.0), axis=2)
        coeffs = np.abs(coeffs)
        if a_dim == 2:
            # Cancellation-free closed form, bitwise-identical to the
            # scalar kernel's 2-D branch.
            fraction_below = _unit_square_halfspace_fraction(
                coeffs[..., 0], coeffs[..., 1], th
            )
            out[start:stop] = np.maximum(
                box_volumes[None, :] * (1.0 - fraction_below), 0.0
            )
            continue
        # Residual zeros only come from zero-width boxes (volume factor 0).
        eps = 1e-12 * np.maximum(1.0, np.max(coeffs, axis=2, keepdims=True))
        coeffs = np.maximum(coeffs, eps)
        dots = coeffs @ bits.T  # (c, m, 2^a)
        terms = np.maximum(0.0, th[..., None] - dots) ** a_dim
        raw = terms @ signs  # (c, m)
        denom = factorial * np.prod(coeffs, axis=2)
        with np.errstate(divide="ignore", invalid="ignore"):
            fraction_below = np.where(denom > 0, raw / denom, 0.0)
        fraction_below = np.clip(fraction_below, 0.0, 1.0)
        totals = np.sum(coeffs, axis=2)
        fraction_below = np.where(th <= 0.0, 0.0, fraction_below)
        fraction_below = np.where(th >= totals, 1.0, fraction_below)
        out[start:stop] = np.maximum(box_volumes[None, :] * (1.0 - fraction_below), 0.0)
    return out


def box_ball_volume_matrix(
    centers: np.ndarray,
    radii: np.ndarray,
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    b_volumes: np.ndarray | None = None,
) -> np.ndarray:
    """``Vol(B_j ∩ ball_i)`` for all pairs: exact for d ≤ 2, chunked QMC above.

    ``b_volumes`` (cached box volumes) only matters for the d > 2 QMC path,
    which needs them for its full-containment shortcut.
    """
    centers = np.asarray(centers, dtype=float)
    radii = np.asarray(radii, dtype=float)
    b_lows = np.asarray(b_lows, dtype=float)
    b_highs = np.asarray(b_highs, dtype=float)
    d = centers.shape[1]
    if d == 1:
        lo = np.maximum(b_lows[None, :, 0], (centers[:, 0] - radii)[:, None])
        hi = np.minimum(b_highs[None, :, 0], (centers[:, 0] + radii)[:, None])
        return np.maximum(hi - lo, 0.0)
    if d == 2:
        n = centers.shape[0]
        m = b_lows.shape[0]
        out = np.empty((n, m))
        # ~6 (c, m) temporaries per quadrant call; chunk accordingly.
        for start, stop in _query_chunks(n, 8 * m):
            cx = centers[start:stop, 0][:, None]
            cy = centers[start:stop, 1][:, None]
            r = radii[start:stop][:, None]
            x0 = b_lows[None, :, 0] - cx
            y0 = b_lows[None, :, 1] - cy
            x1 = b_highs[None, :, 0] - cx
            y1 = b_highs[None, :, 1] - cy
            area = (
                _disc_quadrant_area_vec(x1, y1, r)
                - _disc_quadrant_area_vec(x0, y1, r)
                - _disc_quadrant_area_vec(x1, y0, r)
                + _disc_quadrant_area_vec(x0, y0, r)
            )
            out[start:stop] = np.maximum(area, 0.0)
        return out
    n = centers.shape[0]
    m = b_lows.shape[0]
    out = np.empty((n, m))
    # The QMC path materialises several (c, m, d) temporaries up front.
    for start, stop in _query_chunks(n, m * d):
        out[start:stop] = _box_ball_qmc_matrix(
            centers[start:stop], radii[start:stop], b_lows, b_highs, b_volumes
        )
    return out


def _box_ball_qmc_matrix(
    centers: np.ndarray,
    radii: np.ndarray,
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    b_volumes: np.ndarray | None = None,
) -> np.ndarray:
    """Quasi-MC ball kernel for d > 2, mirroring the scalar decision tree.

    Per pair: empty-overlap rejection, full-containment shortcut, otherwise
    the fixed Sobol point set scaled into the *clipped* box — identical
    points and arithmetic to
    :func:`repro.geometry.volume.box_ball_intersection_volume`, evaluated
    for all surviving pairs in memory-bounded chunks.
    """
    n, d = centers.shape
    m = b_lows.shape[0]
    if b_volumes is None:
        box_volumes = np.prod(b_highs - b_lows, axis=1)
    else:
        box_volumes = np.asarray(b_volumes, dtype=float)
    ball_lows = centers - radii[:, None]
    ball_highs = centers + radii[:, None]
    clip_lows = np.maximum(b_lows[None, :, :], ball_lows[:, None, :])  # (n, m, d)
    clip_highs = np.minimum(b_highs[None, :, :], ball_highs[:, None, :])
    empty = np.any(clip_lows > clip_highs, axis=2)
    corners = np.maximum(
        np.abs(b_lows[None, :, :] - centers[:, None, :]),
        np.abs(b_highs[None, :, :] - centers[:, None, :]),
    )
    contained = np.sum(corners**2, axis=2) <= (radii[:, None] ** 2 + 1e-15)
    out = np.where(~empty & contained, box_volumes[None, :], 0.0)

    pending_q, pending_b = np.nonzero(~empty & ~contained)
    if pending_q.size == 0:
        return out
    unit = _qmc_unit_points(d, QMC_POINTS)  # the scalar path's point set
    points = unit.shape[0]
    step = max(1, CHUNK_ELEMENTS // (points * d))
    for start in range(0, pending_q.size, step):
        qi = pending_q[start : start + step]
        bi = pending_b[start : start + step]
        lows = clip_lows[qi, bi]  # (c, d)
        widths = clip_highs[qi, bi] - lows
        clip_volumes = np.prod(widths, axis=1)
        scaled = lows[:, None, :] + unit[None, :, :] * widths[:, None, :]  # (c, P, d)
        sq_dist = np.sum((scaled - centers[qi][:, None, :]) ** 2, axis=2)
        inside = sq_dist <= (radii[qi, None] ** 2 + _EPS)
        out[qi, bi] = clip_volumes * np.mean(inside, axis=1)
    return out


# ---------------------------------------------------------------------------
# Mixed-workload dispatch
# ---------------------------------------------------------------------------


def _group_by_kind(queries: Sequence[Range]):
    """Partition query indices by range type (boxes / halfspaces / balls / other)."""
    boxes: list[int] = []
    halfspaces: list[int] = []
    balls: list[int] = []
    other: list[int] = []
    for i, query in enumerate(queries):
        if isinstance(query, Box):
            boxes.append(i)
        elif isinstance(query, Halfspace):
            halfspaces.append(i)
        elif isinstance(query, Ball):
            balls.append(i)
        else:
            other.append(i)
    return boxes, halfspaces, balls, other


def intersection_volume_matrix(
    queries: Sequence[Range],
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    b_volumes: np.ndarray | None = None,
) -> np.ndarray:
    """``Vol(B_j ∩ R_i)`` for a mixed workload against one bucket set.

    Queries are grouped by range type, each group runs through its batch
    kernel, and rows are stitched back into workload order.  Range types
    without a batch kernel (unions, semi-algebraic sets) fall back to the
    per-query vectorised path, so any workload is accepted.  ``b_volumes``
    (cached box volumes) is forwarded to the kernels that would otherwise
    recompute it per call.
    """
    queries = list(queries)
    b_lows = np.asarray(b_lows, dtype=float)
    b_highs = np.asarray(b_highs, dtype=float)
    n = len(queries)
    m = b_lows.shape[0]
    _KERNEL_QUERIES.inc(n, kernel="volume_matrix")
    out = np.empty((n, m))
    boxes, halfspaces, balls, other = _group_by_kind(queries)
    if boxes:
        q_lows, q_highs = boxes_to_arrays([queries[i] for i in boxes])
        out[boxes] = box_box_volume_matrix(q_lows, q_highs, b_lows, b_highs)
    if halfspaces:
        normals = np.stack([queries[i].normal for i in halfspaces])
        offsets = np.array([queries[i].offset for i in halfspaces])
        out[halfspaces] = box_halfspace_volume_matrix(
            normals, offsets, b_lows, b_highs, b_volumes
        )
    if balls:
        centers = np.stack([queries[i].ball_center for i in balls])
        radii = np.array([queries[i].radius for i in balls])
        out[balls] = box_ball_volume_matrix(centers, radii, b_lows, b_highs, b_volumes)
    for i in other:
        out[i] = batch_intersection_volumes(b_lows, b_highs, queries[i])
    return out


def coverage_matrix(
    queries: Sequence[Range],
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    b_volumes: np.ndarray | None = None,
) -> np.ndarray:
    """Design matrix ``Vol(B_j ∩ R_i)/Vol(B_j)`` clipped to [0, 1].

    This is Eq. (8)'s coefficient matrix for a whole workload in one call;
    zero-volume buckets contribute 0 (they can carry no density).
    """
    b_lows = np.asarray(b_lows, dtype=float)
    b_highs = np.asarray(b_highs, dtype=float)
    if b_volumes is None:
        b_volumes = np.prod(b_highs - b_lows, axis=1)
    else:
        b_volumes = np.asarray(b_volumes, dtype=float)
    overlaps = intersection_volume_matrix(queries, b_lows, b_highs, b_volumes)
    with np.errstate(divide="ignore", invalid="ignore"):
        fractions = np.where(b_volumes[None, :] > 0, overlaps / b_volumes[None, :], 0.0)
    return np.clip(fractions, 0.0, 1.0)


def coverage_dot(
    queries: Sequence[Range],
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    b_volumes: np.ndarray | None,
    weights: np.ndarray,
) -> np.ndarray:
    """Fused prediction kernel: ``coverage_matrix(...) @ weights`` without
    materialising the full matrix.

    Histogram prediction reduces a coverage *row* to one number, so the
    ``(n, m)`` matrix is pure intermediate state.  Computing it in
    cache-sized query blocks (``CACHE_ELEMENTS``) keeps every temporary
    resident in cache — the dominant cost of the matrix path is DRAM
    traffic, not arithmetic.  All-box workloads (the common case) take a
    fused fast path: the bucket normalisation folds into the weights once
    (a box overlap never exceeds the bucket volume, by monotonicity of
    floating-point min/sub/mul, so the matrix path's divide + clip is a
    per-entry no-op) and the reduction becomes a single einsum
    contraction per block.
    """
    queries = list(queries)
    b_lows = np.asarray(b_lows, dtype=float)
    b_highs = np.asarray(b_highs, dtype=float)
    if b_volumes is None:
        b_volumes = np.prod(b_highs - b_lows, axis=1)
    else:
        b_volumes = np.asarray(b_volumes, dtype=float)
    weights = np.asarray(weights, dtype=float)
    n = len(queries)
    m = b_lows.shape[0]
    out = np.empty(n)
    _KERNEL_QUERIES.inc(n, kernel="coverage_dot")
    if n and all(isinstance(q, Box) for q in queries):
        return _box_coverage_dot(queries, b_lows, b_highs, b_volumes, weights, out)
    zero = b_volumes <= 0
    any_zero = bool(zero.any())
    step = max(1, CACHE_ELEMENTS // max(1, m))
    _KERNEL_CHUNKS.inc(-(-n // step) if n else 0, kernel="coverage_dot")
    for start in range(0, n, step):
        stop = min(n, start + step)
        overlaps = intersection_volume_matrix(
            queries[start:stop], b_lows, b_highs, b_volumes
        )
        with np.errstate(divide="ignore", invalid="ignore"):
            np.divide(overlaps, b_volumes[None, :], out=overlaps)
        if any_zero:
            overlaps[:, zero] = 0.0
        np.clip(overlaps, 0.0, 1.0, out=overlaps)
        out[start:stop] = overlaps @ weights
    return out


def _box_coverage_dot(
    queries: Sequence[Box],
    b_lows: np.ndarray,
    b_highs: np.ndarray,
    b_volumes: np.ndarray,
    weights: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """All-box fused coverage dot: per-dimension widths + one contraction.

    Uses small L1/L2-resident blocks (a quarter of ``CACHE_ELEMENTS`` per
    buffer), preallocated buffers reused across blocks, and contiguous
    per-dimension coordinate rows — strided column reads defeat SIMD in
    the broadcast kernels.
    """
    q_lows, q_highs = boxes_to_arrays(queries)
    n, d = q_lows.shape
    m = b_lows.shape[0]
    with np.errstate(divide="ignore", invalid="ignore"):
        scaled = np.where(b_volumes > 0.0, weights / b_volumes, 0.0)
    ql = np.ascontiguousarray(q_lows.T)
    qh = np.ascontiguousarray(q_highs.T)
    bl = np.ascontiguousarray(b_lows.T)
    bh = np.ascontiguousarray(b_highs.T)
    step = int(max(8, min(n, CACHE_ELEMENTS // (4 * max(1, m)))))
    _KERNEL_CHUNKS.inc(-(-n // step), kernel="coverage_dot")
    acc_buf = np.empty((step, m))
    cur_buf = np.empty((step, m))
    lo_buf = np.empty((step, m))
    for start in range(0, n, step):
        stop = min(n, start + step)
        c = stop - start
        acc = acc_buf[:c]
        cur = cur_buf[:c]
        lo = lo_buf[:c]
        for k in range(d):
            dest = acc if k == 0 else cur
            np.maximum.outer(ql[k][start:stop], bl[k], out=lo)
            np.minimum.outer(qh[k][start:stop], bh[k], out=dest)
            np.subtract(dest, lo, out=dest)
            np.maximum(dest, 0.0, out=dest)
            if 0 < k < d - 1:
                np.multiply(acc, cur, out=acc)
        if d == 1:
            out[start:stop] = acc @ scaled
        else:
            out[start:stop] = np.einsum("ij,ij,j->i", acc, cur, scaled)
    return out


def containment_matrix(queries: Sequence[Range], points: np.ndarray) -> np.ndarray:
    """Batch membership ``1(p_k ∈ R_i)`` as an ``(n, p)`` float matrix.

    Boxes, halfspaces and balls are evaluated with the same comparisons as
    their ``contains`` methods (including the ``±1e-12`` closure epsilon),
    broadcast over all queries at once; other range types fall back to
    their own vectorised ``contains``.
    """
    queries = list(queries)
    pts = np.asarray(points, dtype=float)
    n = len(queries)
    p, d = pts.shape
    _KERNEL_QUERIES.inc(n, kernel="containment")
    out = np.empty((n, p))
    boxes, halfspaces, balls, other = _group_by_kind(queries)
    if boxes:
        q_lows, q_highs = boxes_to_arrays([queries[i] for i in boxes])
        idx = np.asarray(boxes)
        for start, stop in _query_chunks(len(boxes), p * d, kernel="containment"):
            inside = np.ones((stop - start, p), dtype=bool)
            for k in range(d):
                coords = pts[None, :, k]
                inside &= coords >= q_lows[start:stop, k, None] - _EPS
                inside &= coords <= q_highs[start:stop, k, None] + _EPS
            out[idx[start:stop]] = inside
    if halfspaces:
        normals = np.stack([queries[i].normal for i in halfspaces])
        offsets = np.array([queries[i].offset for i in halfspaces])
        out[halfspaces] = (pts @ normals.T >= offsets[None, :] - _EPS).T
    if balls:
        centers = np.stack([queries[i].ball_center for i in balls])
        radii = np.array([queries[i].radius for i in balls])
        idx = np.asarray(balls)
        for start, stop in _query_chunks(len(balls), p * d, kernel="containment"):
            sq_dist = np.zeros((stop - start, p))
            for k in range(d):
                diff = pts[None, :, k] - centers[start:stop, k, None]
                sq_dist += diff * diff
            out[idx[start:stop]] = sq_dist <= (radii[start:stop, None] ** 2 + _EPS)
    for i in other:
        out[i] = np.asarray(queries[i].contains(pts), dtype=float)
    return out
