"""Query-range geometry.

A *range* is a subset of :math:`\\mathbb{R}^d` used as a selection-query
predicate.  The paper's three headline query classes are:

* orthogonal range queries  -> :class:`Box`
* linear inequality queries -> :class:`Halfspace`
* distance-based queries    -> :class:`Ball`

plus the more general :class:`SemiAlgebraicRange` (Boolean combinations of
polynomial inequalities, Section 2.2) and :class:`DiscIntersectionRange`
(ranges over a universe of discs, handled via the lifting of Section 2.2).

All coordinates live in the normalised data domain ``[0, 1]^d`` (the paper
normalises every attribute into ``[0, 1]``), although nothing below enforces
that: ranges are honest subsets of :math:`\\mathbb{R}^d` and may extend
beyond the domain (e.g. halfspaces are unbounded).
"""

from __future__ import annotations

import abc
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "Range",
    "Box",
    "Halfspace",
    "Ball",
    "SemiAlgebraicRange",
    "DiscIntersectionRange",
    "UnionRange",
    "unit_box",
]

_EPS = 1e-12


def _as_float_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite, got {arr}")
    return arr


class Range(abc.ABC):
    """Abstract query range in :math:`\\mathbb{R}^d`.

    Concrete ranges implement vectorised membership plus a bounding box;
    everything else (sampling, intersection volume) is built on top of those
    two primitives in :mod:`repro.geometry.sampling` and
    :mod:`repro.geometry.volume`.
    """

    __slots__ = ()

    @property
    @abc.abstractmethod
    def dim(self) -> int:
        """Ambient dimension of the range."""

    @abc.abstractmethod
    def contains(self, points: np.ndarray) -> np.ndarray:
        """Vectorised membership test.

        Parameters
        ----------
        points:
            Array of shape ``(n, dim)`` (or ``(dim,)`` for a single point).

        Returns
        -------
        Boolean array of shape ``(n,)`` (or a scalar bool for a single point).
        """

    @abc.abstractmethod
    def bounding_box(self) -> "Box":
        """Smallest axis-aligned box containing ``self`` clipped to [0,1]^d.

        Unbounded ranges (halfspaces) are clipped to the unit data domain
        first, as in Appendix A.2 of the paper.
        """

    def __contains__(self, point) -> bool:
        return bool(self.contains(np.asarray(point, dtype=float)))

    def _prepare_points(self, points: np.ndarray) -> tuple[np.ndarray, bool]:
        """Normalise ``points`` to 2-D and report whether input was a single point."""
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        if pts.ndim != 2 or pts.shape[1] != self.dim:
            raise ValueError(
                f"points must have shape (n, {self.dim}) or ({self.dim},), got {points if np.ndim(points)==0 else np.shape(points)}"
            )
        return pts, single


class Box(Range):
    """Axis-aligned hyper-rectangle ``x_i in [lo_i, hi_i]`` (closed).

    This is both the orthogonal-range *query* class and the *bucket* shape
    used by the histogram models, so it carries a little extra machinery
    (volume, intersection, subtraction) beyond the base interface.
    """

    __slots__ = ("lows", "highs")

    def __init__(self, lows: Sequence[float], highs: Sequence[float]):
        lows_arr = _as_float_array(lows, "lows")
        highs_arr = _as_float_array(highs, "highs")
        if lows_arr.shape != highs_arr.shape:
            raise ValueError("lows and highs must have the same length")
        if np.any(lows_arr > highs_arr + _EPS):
            raise ValueError(f"lows must be <= highs, got {lows_arr} > {highs_arr}")
        self.lows = lows_arr
        self.highs = np.maximum(highs_arr, lows_arr)

    @property
    def dim(self) -> int:
        return self.lows.shape[0]

    @property
    def widths(self) -> np.ndarray:
        return self.highs - self.lows

    def volume(self) -> float:
        """Lebesgue measure of the box (0 for degenerate boxes)."""
        return float(np.prod(self.widths))

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts, single = self._prepare_points(points)
        inside = np.all((pts >= self.lows - _EPS) & (pts <= self.highs + _EPS), axis=1)
        return bool(inside[0]) if single else inside

    def bounding_box(self) -> "Box":
        return self

    def intersect(self, other: "Box") -> "Box | None":
        """Intersection with another box, or ``None`` when empty."""
        lows = np.maximum(self.lows, other.lows)
        highs = np.minimum(self.highs, other.highs)
        if np.any(lows > highs):
            return None
        return Box(lows, highs)

    def intersects(self, other: "Box") -> bool:
        return bool(np.all(np.maximum(self.lows, other.lows) <= np.minimum(self.highs, other.highs)))

    def contains_box(self, other: "Box") -> bool:
        return bool(np.all(self.lows <= other.lows + _EPS) and np.all(other.highs <= self.highs + _EPS))

    def subtract(self, hole: "Box") -> list["Box"]:
        """Decompose ``self \\ hole`` into at most ``2*dim`` disjoint boxes.

        This is the classic axis-sweep box subtraction used by STHoles-style
        histograms (our ISOMER baseline) when a query "drills a hole" into an
        existing bucket.  Boxes with zero volume are dropped.
        """
        clipped = self.intersect(hole)
        if clipped is None:
            return [self]
        pieces: list[Box] = []
        lows = self.lows.copy()
        highs = self.highs.copy()
        for axis in range(self.dim):
            if clipped.lows[axis] > lows[axis] + _EPS:
                piece_highs = highs.copy()
                piece_highs[axis] = clipped.lows[axis]
                piece = Box(lows.copy(), piece_highs)
                if piece.volume() > 0.0:
                    pieces.append(piece)
                lows = lows.copy()
                lows[axis] = clipped.lows[axis]
            if clipped.highs[axis] < highs[axis] - _EPS:
                piece_lows = lows.copy()
                piece_lows[axis] = clipped.highs[axis]
                piece = Box(piece_lows, highs.copy())
                if piece.volume() > 0.0:
                    pieces.append(piece)
                highs = highs.copy()
                highs[axis] = clipped.highs[axis]
        return pieces

    def center(self) -> np.ndarray:
        return 0.5 * (self.lows + self.highs)

    def split(self) -> list["Box"]:
        """Split into the ``2^dim`` equal children (quadtree/octree split)."""
        mid = self.center()
        children: list[Box] = []
        for mask in range(1 << self.dim):
            lows = self.lows.copy()
            highs = self.highs.copy()
            for axis in range(self.dim):
                if (mask >> axis) & 1:
                    lows[axis] = mid[axis]
                else:
                    highs[axis] = mid[axis]
            children.append(Box(lows, highs))
        return children

    @staticmethod
    def from_center(center: Sequence[float], widths: Sequence[float], clip_to: "Box | None" = None) -> "Box":
        """Box with the given ``center`` and per-dimension ``widths``.

        When ``clip_to`` is given the result is intersected with it (the
        paper clips every generated query to the unit data domain).
        """
        c = _as_float_array(center, "center")
        w = _as_float_array(widths, "widths")
        if np.any(w < 0):
            raise ValueError("widths must be non-negative")
        box = Box(c - w / 2.0, c + w / 2.0)
        if clip_to is not None:
            clipped = box.intersect(clip_to)
            if clipped is None:
                # A fully out-of-domain query degenerates to a zero-volume
                # sliver on the domain boundary.
                point = np.clip(c, clip_to.lows, clip_to.highs)
                return Box(point, point)
            return clipped
        return box

    def __repr__(self) -> str:
        intervals = ", ".join(f"[{lo:.4g}, {hi:.4g}]" for lo, hi in zip(self.lows, self.highs))
        return f"Box({intervals})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return bool(np.allclose(self.lows, other.lows) and np.allclose(self.highs, other.highs))

    def __hash__(self) -> int:
        return hash((tuple(np.round(self.lows, 12)), tuple(np.round(self.highs, 12))))


def unit_box(dim: int) -> Box:
    """The normalised data domain ``[0, 1]^dim``."""
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    return Box(np.zeros(dim), np.ones(dim))


class Halfspace(Range):
    """Linear inequality query ``a . x >= b``.

    ``SELECT * FROM T WHERE theta_0 + theta_1*A_1 + ... + theta_d*A_d >= 0``
    corresponds to ``a = (theta_1..theta_d)``, ``b = -theta_0``.
    """

    __slots__ = ("normal", "offset")

    def __init__(self, normal: Sequence[float], offset: float):
        normal_arr = _as_float_array(normal, "normal")
        if np.allclose(normal_arr, 0.0):
            raise ValueError("halfspace normal must be non-zero")
        self.normal = normal_arr
        self.offset = float(offset)

    @property
    def dim(self) -> int:
        return self.normal.shape[0]

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts, single = self._prepare_points(points)
        inside = pts @ self.normal >= self.offset - _EPS
        return bool(inside[0]) if single else inside

    def bounding_box(self) -> Box:
        # Deferred import: sampling builds on ranges.
        from repro.geometry.sampling import halfspace_bounding_box

        return halfspace_bounding_box(self, unit_box(self.dim))

    @staticmethod
    def through_point(point: Sequence[float], normal: Sequence[float]) -> "Halfspace":
        """Halfspace whose boundary hyperplane passes through ``point``.

        This is how Section 4 generates halfspace workloads: pick a center
        point on the boundary plane, then a random unit normal.
        """
        p = _as_float_array(point, "point")
        n = _as_float_array(normal, "normal")
        return Halfspace(n, float(n @ p))

    def __repr__(self) -> str:
        return f"Halfspace(normal={np.round(self.normal, 4)}, offset={self.offset:.4g})"


class Ball(Range):
    """Distance-based query ``||x - center||_2 <= radius``."""

    __slots__ = ("ball_center", "radius")

    def __init__(self, center: Sequence[float], radius: float):
        center_arr = _as_float_array(center, "center")
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.ball_center = center_arr
        self.radius = float(radius)

    @property
    def dim(self) -> int:
        return self.ball_center.shape[0]

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts, single = self._prepare_points(points)
        sq_dist = np.sum((pts - self.ball_center) ** 2, axis=1)
        inside = sq_dist <= self.radius**2 + _EPS
        return bool(inside[0]) if single else inside

    def bounding_box(self) -> Box:
        domain = unit_box(self.dim)
        lows = np.maximum(self.ball_center - self.radius, domain.lows)
        highs = np.minimum(self.ball_center + self.radius, domain.highs)
        if np.any(lows > highs):
            point = np.clip(self.ball_center, domain.lows, domain.highs)
            return Box(point, point)
        return Box(lows, highs)

    def __repr__(self) -> str:
        return f"Ball(center={np.round(self.ball_center, 4)}, radius={self.radius:.4g})"


class SemiAlgebraicRange(Range):
    """Boolean combination of polynomial inequalities (Section 2.2).

    The range is given as a list of *predicates* ``p(x) <= 0`` (each a
    callable returning the polynomial value, vectorised over rows) combined
    with a Boolean ``combine`` function over the per-predicate truth values.
    The default combiner is conjunction, covering sets like the paper's
    example ``(x^2+y^2<=4) AND (x^2+y^2>=1) AND (y-2x^2<=0)``.

    ``bounding_box`` must be supplied by the caller (tight boxes for general
    semi-algebraic sets require cell decomposition, which the learning
    algorithms never need: they only sample and test membership).
    """

    __slots__ = ("_dim", "predicates", "combine", "_bbox")

    def __init__(
        self,
        dim: int,
        predicates: Sequence[Callable[[np.ndarray], np.ndarray]],
        bounding_box: Box | None = None,
        combine: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if not predicates:
            raise ValueError("at least one predicate is required")
        self._dim = int(dim)
        self.predicates = list(predicates)
        self.combine = combine if combine is not None else (lambda truth: np.all(truth, axis=0))
        self._bbox = bounding_box if bounding_box is not None else unit_box(dim)
        if self._bbox.dim != dim:
            raise ValueError("bounding_box dimension mismatch")

    @property
    def dim(self) -> int:
        return self._dim

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts, single = self._prepare_points(points)
        truth = np.stack([np.asarray(p(pts)) <= _EPS for p in self.predicates], axis=0)
        inside = np.asarray(self.combine(truth), dtype=bool)
        return bool(inside[0]) if single else inside

    def bounding_box(self) -> Box:
        return self._bbox


class DiscIntersectionRange(Range):
    """Disc-intersection query over a universe of discs (Section 2.2).

    Data objects are discs in the plane encoded as points ``(x, y, z)`` in
    :math:`\\mathbb{R}^3_{z \\ge 0}` (center, radius).  A query disc ``B``
    with center ``(cx, cy)`` and radius ``r`` selects every disc intersecting
    it, i.e. the semi-algebraic set

    .. math:: (x - cx)^2 + (y - cy)^2 \\le (r + z)^2,\\quad z \\ge 0.
    """

    __slots__ = ("query_center", "query_radius", "max_data_radius")

    def __init__(self, center: Sequence[float], radius: float, max_data_radius: float = 1.0):
        c = _as_float_array(center, "center")
        if c.shape[0] != 2:
            raise ValueError("disc-intersection queries live over planar discs (2-D centers)")
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        self.query_center = c
        self.query_radius = float(radius)
        self.max_data_radius = float(max_data_radius)

    @property
    def dim(self) -> int:
        return 3  # (x, y, z=radius) lifting

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts, single = self._prepare_points(points)
        xy = pts[:, :2]
        z = pts[:, 2]
        sq_dist = np.sum((xy - self.query_center) ** 2, axis=1)
        inside = (z >= -_EPS) & (sq_dist <= (self.query_radius + z) ** 2 + _EPS)
        return bool(inside[0]) if single else inside

    def bounding_box(self) -> Box:
        reach = self.query_radius + self.max_data_radius
        lows = np.array(
            [self.query_center[0] - reach, self.query_center[1] - reach, 0.0]
        )
        highs = np.array(
            [self.query_center[0] + reach, self.query_center[1] + reach, self.max_data_radius]
        )
        domain = unit_box(3)
        clipped = Box(lows, highs).intersect(domain)
        return clipped if clipped is not None else Box(np.zeros(3), np.zeros(3))


class UnionRange(Range):
    """Finite union of ranges — IN-list and disjunctive predicates.

    ``SELECT * FROM T WHERE A1 IN (a, b, c)`` or any OR of the basic
    predicate shapes.  A union of ``k`` ranges from a family of VC
    dimension ``λ`` has VC dimension ``O(kλ log k)`` — still finite, so
    Theorem 2.1 applies and the selectivity of IN-list workloads is
    learnable with the same machinery.  PtsHist and the Monte-Carlo paths
    work out of the box (membership is the only primitive they need);
    exact box-intersection volumes fall back to quasi-MC.
    """

    __slots__ = ("members",)

    def __init__(self, members: Sequence[Range]):
        if not members:
            raise ValueError("a union needs at least one member range")
        dims = {m.dim for m in members}
        if len(dims) != 1:
            raise ValueError(f"members must share one dimension, got {sorted(dims)}")
        self.members = list(members)

    @property
    def dim(self) -> int:
        return self.members[0].dim

    def contains(self, points: np.ndarray) -> np.ndarray:
        pts, single = self._prepare_points(points)
        inside = np.zeros(pts.shape[0], dtype=bool)
        for member in self.members:
            inside |= np.asarray(member.contains(pts))
            if inside.all():
                break
        return bool(inside[0]) if single else inside

    def bounding_box(self) -> "Box":
        boxes = [m.bounding_box() for m in self.members]
        lows = np.min(np.stack([b.lows for b in boxes]), axis=0)
        highs = np.max(np.stack([b.highs for b in boxes]), axis=0)
        return Box(lows, highs)

    @staticmethod
    def in_list(
        attribute: int, values: Sequence[float], cardinality: int, dim: int
    ) -> "UnionRange":
        """``attribute IN (values)`` over a categorical attribute.

        Each value's category cell (width ``1/cardinality``) becomes a box
        spanning the full domain on every other attribute.
        """
        if len(values) == 0:
            raise ValueError("IN-list needs at least one value")
        if not 0 <= attribute < dim:
            raise ValueError(f"attribute {attribute} out of range for dim {dim}")
        if cardinality < 1:
            raise ValueError(f"cardinality must be >= 1, got {cardinality}")
        boxes = []
        for value in values:
            code = min(int(float(value) * cardinality), cardinality - 1)
            lows = np.zeros(dim)
            highs = np.ones(dim)
            lows[attribute] = code / cardinality
            highs[attribute] = (code + 1) / cardinality
            boxes.append(Box(lows, highs))
        return UnionRange(boxes)
