"""Exact and quasi-Monte-Carlo intersection volumes.

Equation (6) of the paper evaluates a histogram model as

.. math:: s_D(R) = \\sum_i \\frac{Vol(B_i \\cap R)}{Vol(B_i)} w_i

so both training (building the design matrix) and prediction hinge on
``Vol(box ∩ range)``.  We provide exact closed forms wherever possible:

* box ∩ box — exact in any dimension (interval overlap product),
* box ∩ halfspace — exact in any dimension via the classical
  inclusion–exclusion formula for the volume of a simplex-truncated cube
  (the sum over cube vertices of signed ``max(0, t - c.v)^d`` terms),
* box ∩ ball — exact in 1-D and 2-D (circular-segment integration),
  deterministic quasi-Monte-Carlo in higher dimension.

The quasi-MC path uses a *fixed* low-discrepancy point set scaled into the
box, so volumes — and therefore every estimator built on them — remain fully
deterministic, preserving QuadHist's stability property (Lemma A.4).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.geometry.ranges import Ball, Box, Halfspace, Range

__all__ = [
    "unit_ball_volume",
    "ball_volume",
    "box_box_intersection_volume",
    "box_halfspace_intersection_volume",
    "box_ball_intersection_volume",
    "intersection_volume",
    "range_volume",
    "monte_carlo_intersection_volume",
]

#: Number of quasi-Monte-Carlo points used for volumes with no closed form.
#: 4096 scrambled-Sobol points give ~1e-3 relative error on smooth bodies,
#: far below the selectivity-estimation noise floor in the experiments.
QMC_POINTS = 4096


def unit_ball_volume(dim: int) -> float:
    """Volume of the unit Euclidean ball in ``dim`` dimensions."""
    if dim < 0:
        raise ValueError(f"dim must be >= 0, got {dim}")
    return math.pi ** (dim / 2.0) / math.gamma(dim / 2.0 + 1.0)


def ball_volume(radius: float, dim: int) -> float:
    """Volume of a ``dim``-dimensional ball of the given ``radius``."""
    if radius < 0:
        raise ValueError(f"radius must be non-negative, got {radius}")
    return unit_ball_volume(dim) * radius**dim


def box_box_intersection_volume(box: Box, other: Box) -> float:
    """Exact ``Vol(box ∩ other)`` in any dimension."""
    lows = np.maximum(box.lows, other.lows)
    highs = np.minimum(box.highs, other.highs)
    widths = highs - lows
    if np.any(widths < 0):
        return 0.0
    return float(np.prod(widths))


def _unit_square_halfspace_fraction(c1, c2, t):
    """Fraction of the unit square with ``c1*y1 + c2*y2 <= t``, elementwise.

    Closed-form trapezoid geometry instead of inclusion–exclusion: the 2-D
    I–E identity divides a catastrophically cancelled sum by ``c1*c2`` and
    loses ``~eps * max(c)/min(c)`` of accuracy when the coefficients are
    orders of magnitude apart; every branch here is cancellation-free.
    Assumes ``c1, c2 >= 0``; accepts scalars or broadcastable arrays.
    The batch halfspace kernels evaluate the same arithmetic, so scalar and
    matrix results agree bitwise.
    """
    lo = np.minimum(c1, c2)
    hi = np.maximum(c1, c2)
    total = lo + hi
    with np.errstate(divide="ignore", invalid="ignore"):
        denom = 2.0 * lo * hi
        tri_lo = np.where(denom > 0, t * t / denom, 0.0)
        rem = total - t
        tri_hi = 1.0 - np.where(denom > 0, rem * rem / denom, 0.0)
        mid = np.where(hi > 0, (t - 0.5 * lo) / hi, 0.0)
    frac = np.where(t <= lo, tri_lo, np.where(t <= hi, mid, tri_hi))
    frac = np.where(t <= 0.0, 0.0, np.where(t >= total, 1.0, frac))
    return np.clip(frac, 0.0, 1.0)


def _unit_cube_halfspace_fraction(coeffs: np.ndarray, threshold: float) -> float:
    """Fraction of the unit cube with ``coeffs . y <= threshold``.

    Assumes ``coeffs > 0`` elementwise.  Uses the inclusion–exclusion
    identity

    .. math::
       Vol = \\frac{1}{d!\\,\\prod c_i}
             \\sum_{v \\in \\{0,1\\}^d} (-1)^{|v|} \\max(0, t - c\\cdot v)^d

    which is exact for every ``t``.  Cost is ``O(2^d)``; for the paper's
    dimensionalities (``d <= 10``) that is at most 1024 terms.
    """
    d = coeffs.shape[0]
    total = float(np.sum(coeffs))
    if threshold <= 0.0:
        return 0.0
    if threshold >= total:
        return 1.0
    if d == 2:
        # The 2-D case has a cancellation-free closed form; use it so tiny
        # coefficient ratios stay exact (the I–E identity below does not).
        return float(
            _unit_square_halfspace_fraction(
                float(coeffs[0]), float(coeffs[1]), threshold
            )
        )
    # Enumerate cube vertices via bit masks; vectorised over all 2^d masks.
    masks = np.arange(1 << d, dtype=np.int64)
    bits = (masks[:, None] >> np.arange(d)) & 1  # (2^d, d)
    dots = bits @ coeffs
    signs = np.where((np.sum(bits, axis=1) % 2) == 0, 1.0, -1.0)
    terms = np.maximum(0.0, threshold - dots) ** d
    raw = float(np.sum(signs * terms))
    volume = raw / (math.factorial(d) * float(np.prod(coeffs)))
    return min(1.0, max(0.0, volume))


def box_halfspace_intersection_volume(box: Box, halfspace: Halfspace) -> float:
    """Exact ``Vol(box ∩ {a.x >= b})`` in any dimension.

    The box is affinely mapped onto the unit cube; degenerate (zero-width)
    dimensions are eliminated by substituting their single coordinate value
    into the constraint.
    """
    if box.dim != halfspace.dim:
        raise ValueError("dimension mismatch between box and halfspace")
    widths = box.widths
    box_volume = float(np.prod(widths))
    if box_volume <= 0.0:
        return 0.0
    # Map x = lows + widths * y with y in [0,1]^d:
    #   a.x >= b  <=>  (a*widths).y >= b - a.lows
    coeffs = halfspace.normal * widths
    threshold = halfspace.offset - float(halfspace.normal @ box.lows)
    # Flip negative coefficients via y -> 1 - y so all coefficients are >= 0.
    negative = coeffs < 0
    threshold -= float(np.sum(coeffs[negative]))
    coeffs = np.abs(coeffs)
    # Drop (near-)zero coefficients: those dimensions are unconstrained.
    active = coeffs > 1e-15 * max(1.0, float(np.max(coeffs, initial=0.0)))
    coeffs = coeffs[active]
    if coeffs.size == 0:
        return box_volume if threshold <= 0.0 else 0.0
    # We need Vol{c.y >= t} = 1 - Vol{c.y <= t} on the unit cube.
    fraction_below = _unit_cube_halfspace_fraction(coeffs, threshold)
    return box_volume * (1.0 - fraction_below)


def _disc_quadrant_area(x: float, y: float, radius: float) -> float:
    """Area of ``{(X, Y): X^2+Y^2 <= r^2, X <= x, Y <= y}`` (disc at origin)."""
    r = radius
    if r <= 0.0 or x <= -r or y <= -r:
        return 0.0
    x = min(x, r)

    def antiderivative(t: float) -> float:
        t = min(max(t, -r), r)
        return 0.5 * (t * math.sqrt(max(r * r - t * t, 0.0)) + r * r * math.asin(t / r))

    def integral_g(a: float, b: float) -> float:
        """Integral of sqrt(r^2 - X^2) over [a, b] (0 when b <= a)."""
        if b <= a:
            return 0.0
        return antiderivative(b) - antiderivative(a)

    if y >= r:
        # Full vertical extent of the disc for every X <= x.
        return 2.0 * integral_g(-r, x)

    x_star = math.sqrt(max(r * r - y * y, 0.0))
    a, b = -r, x
    # Clamp the "g > y" interval (-x*, x*) into [a, b].
    lo = min(max(a, -x_star), b)
    hi = max(min(b, x_star), a)
    if y >= 0.0:
        # Integrand is min(y, g) + g: equals 2g where g <= y (|X| >= x*),
        # and y + g where g > y (|X| < x*).
        area = integral_g(a, b)  # the "+ g" part everywhere
        if hi > lo:
            area += y * (hi - lo)  # min(y, g) = y on (lo, hi)
            area += integral_g(a, lo) + integral_g(hi, b)  # min(y, g) = g outside
        else:
            area += integral_g(a, b)  # g <= y throughout [a, b]
        return area
    # y < 0: only X with g(X) >= -y contribute, integrand is y + g there.
    if hi <= lo:
        return 0.0
    return y * (hi - lo) + integral_g(lo, hi)


def _rect_disc_area_2d(box: Box, ball: Ball) -> float:
    """Exact area of a 2-D rectangle ∩ disc via quadrant inclusion-exclusion."""
    cx, cy = ball.ball_center
    r = ball.radius
    x0, y0 = box.lows[0] - cx, box.lows[1] - cy
    x1, y1 = box.highs[0] - cx, box.highs[1] - cy
    area = (
        _disc_quadrant_area(x1, y1, r)
        - _disc_quadrant_area(x0, y1, r)
        - _disc_quadrant_area(x1, y0, r)
        + _disc_quadrant_area(x0, y0, r)
    )
    return max(0.0, area)


@lru_cache(maxsize=8)
def _qmc_unit_points(dim: int, count: int = QMC_POINTS) -> np.ndarray:
    """Fixed low-discrepancy point set in ``[0,1]^dim`` (deterministic)."""
    from scipy.stats import qmc

    sampler = qmc.Sobol(d=dim, scramble=True, seed=20220612)
    return sampler.random(count)


def monte_carlo_intersection_volume(box: Box, range_: Range, points: int = QMC_POINTS) -> float:
    """Deterministic quasi-MC estimate of ``Vol(box ∩ range)``.

    Uses a fixed scrambled-Sobol point set scaled into the box, so repeated
    calls with identical arguments return identical values.
    """
    box_volume = box.volume()
    if box_volume <= 0.0:
        return 0.0
    unit = _qmc_unit_points(box.dim, points)
    scaled = box.lows + unit * box.widths
    inside = range_.contains(scaled)
    return box_volume * float(np.mean(inside))


def box_ball_intersection_volume(box: Box, ball: Ball) -> float:
    """``Vol(box ∩ ball)``: exact for dim <= 2, quasi-MC above."""
    if box.dim != ball.dim:
        raise ValueError("dimension mismatch between box and ball")
    # Quick rejections keep the common cases cheap and exact.
    bbox_lows = ball.ball_center - ball.radius
    bbox_highs = ball.ball_center + ball.radius
    clip_lows = np.maximum(box.lows, bbox_lows)
    clip_highs = np.minimum(box.highs, bbox_highs)
    if np.any(clip_lows > clip_highs):
        return 0.0
    corners_lo = np.maximum(np.abs(box.lows - ball.ball_center), np.abs(box.highs - ball.ball_center))
    if float(np.sum(corners_lo**2)) <= ball.radius**2 + 1e-15:
        return box.volume()  # box entirely inside the ball
    if box.dim == 1:
        return max(0.0, float(clip_highs[0] - clip_lows[0]))
    if box.dim == 2:
        return _rect_disc_area_2d(box, ball)
    clipped = Box(clip_lows, clip_highs)
    return monte_carlo_intersection_volume(clipped, ball)


def intersection_volume(box: Box, range_: Range) -> float:
    """``Vol(box ∩ range)`` with the best available method per range type."""
    if isinstance(range_, Box):
        return box_box_intersection_volume(box, range_)
    if isinstance(range_, Halfspace):
        return box_halfspace_intersection_volume(box, range_)
    if isinstance(range_, Ball):
        return box_ball_intersection_volume(box, range_)
    clipped = box.intersect(range_.bounding_box())
    if clipped is None:
        return 0.0
    return monte_carlo_intersection_volume(clipped, range_)


def range_volume(range_: Range, domain: Box) -> float:
    """``Vol(range ∩ domain)`` — the query's measure inside the data domain.

    QuadHist's splitting rule (Algorithm 2) normalises by this quantity.
    """
    return intersection_volume(domain, range_)


# ---------------------------------------------------------------------------
# Batched variants: intersection volumes of MANY boxes against ONE range.
# These feed the design matrix of the weight-estimation phase (Eq. 8), where
# every (bucket, training query) pair needs Vol(B_j ∩ R_i).
# ---------------------------------------------------------------------------


def batch_box_box_volumes(lows: np.ndarray, highs: np.ndarray, query: Box) -> np.ndarray:
    """``Vol(B_j ∩ query)`` for boxes given as ``(m, d)`` low/high arrays."""
    clip_lows = np.maximum(lows, query.lows)
    clip_highs = np.minimum(highs, query.highs)
    widths = clip_highs - clip_lows
    volumes = np.prod(np.maximum(widths, 0.0), axis=1)
    volumes[np.any(widths < 0, axis=1)] = 0.0
    return volumes


def batch_box_halfspace_volumes(
    lows: np.ndarray, highs: np.ndarray, halfspace: Halfspace
) -> np.ndarray:
    """``Vol(B_j ∩ {a.x >= b})`` for many boxes, vectorised over boxes.

    Same inclusion–exclusion identity as the scalar version, evaluated for
    all boxes at once: ``O(m * 2^d * d)``.
    """
    lows = np.asarray(lows, dtype=float)
    highs = np.asarray(highs, dtype=float)
    m, d = lows.shape
    widths = highs - lows
    box_volumes = np.prod(widths, axis=1)
    normal = halfspace.normal
    thresholds = halfspace.offset - lows @ normal  # (m,)
    # Dimensions with a (near-)zero normal component are unconstrained for
    # *every* box: project them out exactly, as the scalar kernel does.
    # The inclusion–exclusion identity is catastrophically ill-conditioned
    # in a coefficient that is tiny relative to the others, so an epsilon
    # guard there costs ~1e-5 of accuracy; exact projection costs nothing.
    active = np.abs(normal) > 1e-15 * max(1.0, float(np.max(np.abs(normal), initial=0.0)))
    a_dim = int(active.sum())
    if a_dim == 0:
        return np.where(thresholds <= 0.0, box_volumes, 0.0)
    coeffs = normal[active][None, :] * widths[:, active]  # (m, a_dim)
    negative = coeffs < 0
    thresholds = thresholds - np.sum(np.where(negative, coeffs, 0.0), axis=1)
    coeffs = np.abs(coeffs)
    if a_dim == 2:
        # Cancellation-free closed form, bitwise-identical to the scalar
        # kernel's 2-D branch (tiny coefficient ratios stay exact).
        fraction_below = _unit_square_halfspace_fraction(
            coeffs[:, 0], coeffs[:, 1], thresholds
        )
        return np.maximum(box_volumes * (1.0 - fraction_below), 0.0)
    # Residual zero coefficients only come from zero-width boxes, whose
    # volume factor forces the result to 0 anyway; the epsilon guard just
    # keeps the arithmetic finite.
    eps = 1e-12 * np.maximum(1.0, np.max(coeffs, axis=1, keepdims=True))
    coeffs = np.maximum(coeffs, eps)
    masks = np.arange(1 << a_dim, dtype=np.int64)
    bits = ((masks[:, None] >> np.arange(a_dim)) & 1).astype(float)  # (2^a, a)
    signs = np.where((np.sum(bits, axis=1) % 2) == 0, 1.0, -1.0)  # (2^a,)
    dots = coeffs @ bits.T  # (m, 2^a)
    terms = np.maximum(0.0, thresholds[:, None] - dots) ** a_dim
    raw = terms @ signs  # (m,)
    denom = math.factorial(a_dim) * np.prod(coeffs, axis=1)
    with np.errstate(divide="ignore", invalid="ignore"):
        fraction_below = np.where(denom > 0, raw / denom, 0.0)
    fraction_below = np.clip(fraction_below, 0.0, 1.0)
    totals = np.sum(coeffs, axis=1)
    fraction_below = np.where(thresholds <= 0.0, 0.0, fraction_below)
    fraction_below = np.where(thresholds >= totals, 1.0, fraction_below)
    return np.maximum(box_volumes * (1.0 - fraction_below), 0.0)


def _disc_quadrant_area_vec(x: np.ndarray, y: np.ndarray, radius) -> np.ndarray:
    """Vectorised :func:`_disc_quadrant_area` over coordinate arrays.

    ``radius`` may be a scalar or any array broadcastable against ``x`` and
    ``y`` (the batch kernels pass one radius per query row).
    """
    x, y, r = np.broadcast_arrays(
        np.asarray(x, dtype=float), np.asarray(y, dtype=float), np.asarray(radius, dtype=float)
    )
    r_safe = np.where(r > 0.0, r, 1.0)
    xc = np.minimum(x, r)

    def g_anti(t: np.ndarray) -> np.ndarray:
        t = np.clip(t, -r, r)
        return 0.5 * (t * np.sqrt(np.maximum(r * r - t * t, 0.0)) + r * r * np.arcsin(t / r_safe))

    def g_int(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.where(b > a, g_anti(b) - g_anti(a), 0.0)

    a = -r
    b = xc
    # Branch 1: y >= r -> full vertical extent.
    full = 2.0 * g_int(a, b)
    # Branch 2: y in (-r, r).
    y_clip = np.clip(y, -r, r)
    x_star = np.sqrt(np.maximum(r * r - y_clip * y_clip, 0.0))
    lo = np.minimum(np.maximum(a, -x_star), b)
    hi = np.maximum(np.minimum(b, x_star), a)
    has_band = hi > lo
    pos_area = g_int(a, b) + np.where(
        has_band,
        y_clip * (hi - lo) + g_int(a, lo) + g_int(hi, b),
        g_int(a, b),
    )
    neg_area = np.where(has_band, y_clip * (hi - lo) + g_int(lo, hi), 0.0)
    partial = np.where(y_clip >= 0.0, pos_area, neg_area)
    area = np.where(y >= r, full, partial)
    dead = (x <= -r) | (y <= -r) | (r <= 0.0)
    return np.where(dead, 0.0, np.maximum(area, 0.0))


def batch_box_ball_volumes(lows: np.ndarray, highs: np.ndarray, ball: Ball) -> np.ndarray:
    """``Vol(B_j ∩ ball)`` for many boxes: exact for d <= 2, quasi-MC above."""
    lows = np.asarray(lows, dtype=float)
    highs = np.asarray(highs, dtype=float)
    m, d = lows.shape
    if d == 1:
        lo = np.maximum(lows[:, 0], ball.ball_center[0] - ball.radius)
        hi = np.minimum(highs[:, 0], ball.ball_center[0] + ball.radius)
        return np.maximum(hi - lo, 0.0)
    if d == 2:
        cx, cy = ball.ball_center
        r = ball.radius
        x0 = lows[:, 0] - cx
        y0 = lows[:, 1] - cy
        x1 = highs[:, 0] - cx
        y1 = highs[:, 1] - cy
        area = (
            _disc_quadrant_area_vec(x1, y1, r)
            - _disc_quadrant_area_vec(x0, y1, r)
            - _disc_quadrant_area_vec(x1, y0, r)
            + _disc_quadrant_area_vec(x0, y0, r)
        )
        return np.maximum(area, 0.0)
    return np.array(
        [box_ball_intersection_volume(Box(lo, hi), ball) for lo, hi in zip(lows, highs)]
    )


def batch_intersection_volumes(lows: np.ndarray, highs: np.ndarray, range_: Range) -> np.ndarray:
    """``Vol(B_j ∩ range)`` for many boxes, dispatching on the range type."""
    if isinstance(range_, Box):
        return batch_box_box_volumes(lows, highs, range_)
    if isinstance(range_, Halfspace):
        return batch_box_halfspace_volumes(lows, highs, range_)
    if isinstance(range_, Ball):
        return batch_box_ball_volumes(lows, highs, range_)
    return np.array(
        [intersection_volume(Box(lo, hi), range_) for lo, hi in zip(lows, highs)]
    )
