"""Durable, versioned model artifacts and serving snapshots.

The paper's learners are cheap to query but expensive to fit, so a fitted
model is worth keeping: this package gives every registry estimator a
self-describing on-disk artifact (:mod:`repro.persistence.artifact`) and
the serving layer a generation-numbered snapshot store
(:mod:`repro.persistence.snapshots`) for free restarts.

.. code-block:: python

    from repro.persistence import save_model, load_model

    save_model(est, "model.rma", training=(queries, selectivities))
    est2 = load_model("model.rma")
    # est2.predict_many(...) is bitwise-identical to est.predict_many(...)

See ``docs/persistence.md`` for the format specification.
"""

from repro.persistence.artifact import (
    ARTIFACT_SUFFIX,
    FORMAT_VERSION,
    load_manifest,
    load_model,
    save_model,
    training_fingerprint,
)
from repro.persistence.snapshots import SnapshotStore

__all__ = [
    "ARTIFACT_SUFFIX",
    "FORMAT_VERSION",
    "save_model",
    "load_model",
    "load_manifest",
    "training_fingerprint",
    "SnapshotStore",
]
