"""Generation-numbered snapshot store for the serving layer.

Each retrain generation of an :class:`~repro.server.EstimatorService`
lands here as one artifact named ``gen-%08d.rma``.  The store is a plain
directory: artifacts are self-describing (see
:mod:`repro.persistence.artifact`), writes are atomic, and the newest
readable artifact wins on restore — a corrupt or truncated latest
generation (e.g. a crash mid-``os.replace`` on a non-atomic filesystem)
falls back to the one before it instead of failing the restart.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Dict, Iterator, Sequence

from repro.core.estimator import SelectivityEstimator
from repro.geometry.ranges import Range
from repro.persistence.artifact import (
    ARTIFACT_SUFFIX,
    ArtifactError,
    load_manifest,
    load_model,
    save_model,
)
from repro.robustness.errors import PersistenceError

__all__ = ["SnapshotStore"]

_GEN_PATTERN = re.compile(r"^gen-(\d{8})" + re.escape(ARTIFACT_SUFFIX) + r"$")


class SnapshotStore:
    """Artifacts for successive model generations in one directory.

    Parameters
    ----------
    directory:
        Snapshot directory; created on first save.
    keep:
        How many generations to retain (older ones are pruned after each
        save).  ``None`` keeps everything.
    """

    def __init__(self, directory: str | os.PathLike, keep: int | None = 5):
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1 or None, got {keep}")
        self.directory = Path(directory)
        self.keep = keep

    def path_for(self, generation: int) -> Path:
        return self.directory / f"gen-{generation:08d}{ARTIFACT_SUFFIX}"

    def generations(self) -> list[int]:
        """Persisted generation numbers, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        for name in os.listdir(self.directory):
            match = _GEN_PATTERN.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_generation(self) -> int | None:
        generations = self.generations()
        return generations[-1] if generations else None

    def save(
        self,
        estimator: SelectivityEstimator,
        generation: int,
        training: tuple[Sequence[Range], Sequence[float]] | None = None,
        metadata: Dict[str, object] | None = None,
    ) -> Path:
        """Persist ``estimator`` as ``generation`` and prune old snapshots."""
        meta = {"generation": int(generation)}
        if metadata:
            meta.update(metadata)
        path = save_model(
            estimator, self.path_for(generation), training=training, metadata=meta
        )
        self._prune()
        return path

    def _prune(self) -> None:
        if self.keep is None:
            return
        generations = self.generations()
        for stale in generations[: -self.keep]:
            try:
                self.path_for(stale).unlink()
            except OSError:
                pass  # pruning is best-effort; a leftover snapshot is harmless

    def _candidates_newest_first(self) -> Iterator[int]:
        yield from reversed(self.generations())

    def restore_latest(self) -> tuple[SelectivityEstimator, dict, Path]:
        """Load the newest readable generation.

        Returns ``(estimator, manifest, path)``.  Unreadable artifacts
        are skipped (newest first); raises
        :class:`~repro.robustness.errors.PersistenceError` when nothing
        restorable exists.
        """
        errors: list[str] = []
        for generation in self._candidates_newest_first():
            path = self.path_for(generation)
            try:
                estimator = load_model(path)
                manifest = load_manifest(path)
            except (ArtifactError, PersistenceError) as exc:
                errors.append(f"{path.name}: {exc}")
                continue
            return estimator, manifest, path
        detail = f" ({'; '.join(errors)})" if errors else ""
        raise PersistenceError(
            f"no restorable snapshot in {self.directory}{detail}"
        )

    def __repr__(self) -> str:
        return f"SnapshotStore({str(self.directory)!r}, keep={self.keep})"
