"""Generation-numbered snapshot store for the serving layer.

Each retrain generation of an :class:`~repro.server.EstimatorService`
lands here as one artifact named ``gen-%08d.rma``.  The store is a plain
directory: artifacts are self-describing (see
:mod:`repro.persistence.artifact`), writes are atomic, and the newest
readable artifact wins on restore — a corrupt or truncated latest
generation (e.g. a crash mid-``os.replace`` on a non-atomic filesystem)
falls back to the one before it instead of failing the restart.
"""

from __future__ import annotations

import os
import re
import time
from pathlib import Path
from typing import Dict, Iterator, Sequence

from repro.core.estimator import SelectivityEstimator
from repro.geometry.ranges import Range
from repro.persistence.artifact import (
    ARTIFACT_SUFFIX,
    ArtifactError,
    load_manifest,
    load_model,
    save_model,
)
from repro.robustness.errors import PersistenceError

__all__ = ["SnapshotStore"]

_GEN_PATTERN = re.compile(r"^gen-(\d{8})" + re.escape(ARTIFACT_SUFFIX) + r"$")


class SnapshotStore:
    """Artifacts for successive model generations in one directory.

    Parameters
    ----------
    directory:
        Snapshot directory; created on first save.
    keep:
        How many generations to retain (older ones are pruned after each
        save).  ``None`` keeps everything.
    stale_lock_seconds:
        Age past which another process's prune lockfile is considered
        abandoned (e.g. its holder was SIGKILLed mid-prune) and taken
        over.  Pruning holds the lock only for a handful of ``unlink``
        calls, so anything older than a few seconds is dead.
    """

    #: Advisory lockfile serializing prunes across worker processes.
    LOCK_NAME = ".prune.lock"

    def __init__(
        self,
        directory: str | os.PathLike,
        keep: int | None = 5,
        stale_lock_seconds: float = 30.0,
    ):
        if keep is not None and keep < 1:
            raise ValueError(f"keep must be >= 1 or None, got {keep}")
        if stale_lock_seconds < 0:
            raise ValueError(
                f"stale_lock_seconds must be >= 0, got {stale_lock_seconds}"
            )
        self.directory = Path(directory)
        self.keep = keep
        self.stale_lock_seconds = float(stale_lock_seconds)

    def path_for(self, generation: int) -> Path:
        return self.directory / f"gen-{generation:08d}{ARTIFACT_SUFFIX}"

    def generations(self) -> list[int]:
        """Persisted generation numbers, ascending."""
        if not self.directory.is_dir():
            return []
        found = []
        for name in os.listdir(self.directory):
            match = _GEN_PATTERN.match(name)
            if match:
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_generation(self) -> int | None:
        generations = self.generations()
        return generations[-1] if generations else None

    def save(
        self,
        estimator: SelectivityEstimator,
        generation: int,
        training: tuple[Sequence[Range], Sequence[float]] | None = None,
        metadata: Dict[str, object] | None = None,
    ) -> Path:
        """Persist ``estimator`` as ``generation`` and prune old snapshots."""
        meta = {"generation": int(generation)}
        if metadata:
            meta.update(metadata)
        path = save_model(
            estimator, self.path_for(generation), training=training, metadata=meta
        )
        self._prune()
        return path

    @property
    def lock_path(self) -> Path:
        return self.directory / self.LOCK_NAME

    def _try_lock(self) -> bool:
        """Grab the advisory prune lock (``O_EXCL`` lockfile).

        Returns False when another live pruner holds it.  A lockfile older
        than ``stale_lock_seconds`` belongs to a process that died
        mid-prune (prunes take milliseconds); it is unlinked and the
        create retried once — classic stale-lock takeover.
        """
        for attempt in range(2):
            try:
                fd = os.open(
                    self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
                )
            except FileExistsError:
                if attempt == 1:
                    return False
                try:
                    age = time.time() - self.lock_path.stat().st_mtime
                except OSError:
                    continue  # holder just released it; retry the create
                if age <= self.stale_lock_seconds:
                    return False  # live holder: skip this prune
                try:
                    self.lock_path.unlink()
                except OSError:
                    return False  # lost the takeover race; skip
            else:
                try:
                    os.write(fd, str(os.getpid()).encode())
                finally:
                    os.close(fd)
                return True
        return False

    def _unlock(self) -> None:
        try:
            self.lock_path.unlink()
        except OSError:
            pass

    def _prune(self) -> None:
        """Delete generations beyond ``keep``, under the advisory lock.

        Concurrent workers all snapshot into (and prune) the same
        directory; without mutual exclusion two pruners can each list the
        directory, decide the same artifact is stale, and race a third
        worker that is mid-``restore_latest`` on it.  The lock serializes
        pruners; a contended prune is simply skipped — the next save
        prunes again, so retention converges.
        """
        if self.keep is None:
            return
        if not self._try_lock():
            return
        try:
            generations = self.generations()
            for stale in generations[: -self.keep]:
                try:
                    self.path_for(stale).unlink()
                except OSError:
                    pass  # pruning is best-effort; a leftover snapshot is harmless
        finally:
            self._unlock()

    def _candidates_newest_first(self) -> Iterator[int]:
        yield from reversed(self.generations())

    def restore_latest(self) -> tuple[SelectivityEstimator, dict, Path]:
        """Load the newest readable generation.

        Returns ``(estimator, manifest, path)``.  Unreadable artifacts
        are skipped (newest first); raises
        :class:`~repro.robustness.errors.PersistenceError` when nothing
        restorable exists.
        """
        errors: list[str] = []
        for generation in self._candidates_newest_first():
            path = self.path_for(generation)
            try:
                estimator = load_model(path)
                manifest = load_manifest(path)
            except (ArtifactError, PersistenceError) as exc:
                errors.append(f"{path.name}: {exc}")
                continue
            return estimator, manifest, path
        detail = f" ({'; '.join(errors)})" if errors else ""
        raise PersistenceError(
            f"no restorable snapshot in {self.directory}{detail}"
        )

    def __repr__(self) -> str:
        return f"SnapshotStore({str(self.directory)!r}, keep={self.keep})"
