"""Versioned, self-describing model artifacts.

An artifact is a single zip file (suffix ``.rma``, "repro model
artifact") with exactly two members:

``manifest.json``
    Everything needed to *name* the model: the artifact format version,
    the estimator's registry name, its typed config
    (:mod:`repro.core.config`) as JSON, any JSON-scalar state entries, a
    sha256 checksum of the payload, and fit metadata (when it was saved,
    how many training pairs it saw, a fingerprint of the training set).

``payload.npz``
    Every ``np.ndarray`` from the estimator's ``_state_dict()``,
    uncompressed, loaded with ``allow_pickle=False`` — artifacts contain
    no executable content.

The split keeps the manifest human-readable (``repro inspect`` just
pretty-prints it) while array state round-trips bitwise through npz.

Writes are atomic: the zip is built in a temp file next to the target
and moved into place with ``os.replace``, so readers never observe a
half-written artifact.

Load validation is strict — wrong format version, missing members,
checksum mismatches, unknown estimator names, and malformed configs all
raise :class:`~repro.robustness.errors.ArtifactError` rather than
producing a silently wrong model.
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import struct
import tempfile
import time
import zipfile
from pathlib import Path
from typing import Dict, Sequence

import numpy as np

from repro.core.config import config_from_dict
from repro.core.estimator import SelectivityEstimator
from repro.data.io import range_to_dict
from repro.geometry.ranges import Range
from repro.robustness.errors import ArtifactError, PersistenceError

__all__ = [
    "ARTIFACT_SUFFIX",
    "FORMAT_VERSION",
    "save_model",
    "load_model",
    "load_manifest",
    "training_fingerprint",
]

#: Bump when the artifact layout changes incompatibly.  Loaders refuse
#: other versions outright: a silent best-effort parse of a future format
#: is how wrong models get served.
FORMAT_VERSION = 1

#: Canonical artifact file suffix ("repro model artifact").
ARTIFACT_SUFFIX = ".rma"

_MANIFEST_NAME = "manifest.json"
_PAYLOAD_NAME = "payload.npz"


def training_fingerprint(
    queries: Sequence[Range], selectivities: Sequence[float]
) -> str:
    """A stable sha256 fingerprint of a ``(queries, selectivities)`` pair.

    Hashes the canonical tagged-JSON encoding of each range
    (:func:`repro.data.io.range_to_dict`) plus the labels as packed
    little-endian doubles, so the same training set always fingerprints
    identically across processes and platforms.
    """
    digest = hashlib.sha256()
    for query in queries:
        digest.update(
            json.dumps(range_to_dict(query), sort_keys=True).encode("utf-8")
        )
        digest.update(b"\x00")
    for value in np.asarray(selectivities, dtype=float):
        digest.update(struct.pack("<d", float(value)))
    return digest.hexdigest()


def _split_state(state: Dict[str, object]) -> tuple[Dict[str, np.ndarray], Dict[str, object]]:
    """Partition a state dict into npz arrays and JSON-able scalars."""
    arrays: Dict[str, np.ndarray] = {}
    scalars: Dict[str, object] = {}
    for key, value in state.items():
        if isinstance(value, np.ndarray):
            arrays[key] = value
        elif isinstance(value, (np.floating, np.integer, np.bool_)):
            scalars[key] = value.item()
        elif value is None or isinstance(value, (bool, int, float, str, list)):
            scalars[key] = value
        else:
            raise TypeError(
                f"state entry {key!r} has unsupported type {type(value).__name__}; "
                "use np.ndarray or JSON scalars/lists"
            )
    return arrays, scalars


def save_model(
    estimator: SelectivityEstimator,
    path: str | os.PathLike,
    training: tuple[Sequence[Range], Sequence[float]] | None = None,
    metadata: Dict[str, object] | None = None,
) -> Path:
    """Persist a fitted estimator to ``path`` atomically.

    ``training`` (the pairs the model was fitted on) is optional; when
    given, the manifest records the training-set size and fingerprint so
    a restored model can be traced back to its exact training data.
    ``metadata`` merges extra JSON-able entries (e.g. ``fit_seconds``)
    into the manifest's ``fit`` section.

    Returns the written path.
    """
    if not getattr(estimator, "_fitted", False):
        raise PersistenceError(
            f"cannot save an unfitted {type(estimator).__name__}"
        )
    if type(estimator).Config is None:
        raise PersistenceError(
            f"{type(estimator).__name__} has no Config dataclass and cannot "
            "be named in an artifact manifest"
        )
    config = estimator.config
    arrays, scalars = _split_state(estimator._state_dict())

    payload_buffer = io.BytesIO()
    np.savez(payload_buffer, **arrays)
    payload = payload_buffer.getvalue()

    fit_meta: Dict[str, object] = {"saved_at": time.time()}
    if training is not None:
        queries, selectivities = training
        fit_meta["n_train"] = len(queries)
        fit_meta["training_fingerprint"] = training_fingerprint(
            queries, selectivities
        )
    if metadata:
        fit_meta.update(metadata)

    manifest = {
        "format_version": FORMAT_VERSION,
        "estimator": type(config).estimator,
        "config": config.to_dict(),
        "state": scalars,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "model_size": estimator.model_size,
        "fit": fit_meta,
    }

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            with zipfile.ZipFile(handle, "w", zipfile.ZIP_DEFLATED) as archive:
                archive.writestr(
                    _MANIFEST_NAME, json.dumps(manifest, indent=2, sort_keys=True)
                )
                # The npz is already a zip; store it uncompressed.
                archive.writestr(
                    zipfile.ZipInfo(_PAYLOAD_NAME), payload, zipfile.ZIP_STORED
                )
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(FileNotFoundError):
            os.unlink(tmp_name)
        raise
    return path


def _read_archive(path: str | os.PathLike) -> tuple[dict, bytes]:
    """Read and structurally validate the manifest + raw payload bytes."""
    path = Path(path)
    if not path.exists():
        raise PersistenceError(f"artifact not found: {path}")
    try:
        with zipfile.ZipFile(path, "r") as archive:
            names = set(archive.namelist())
            missing = {_MANIFEST_NAME, _PAYLOAD_NAME} - names
            if missing:
                raise ArtifactError(
                    f"artifact {path} is missing member(s) {sorted(missing)}"
                )
            manifest_bytes = archive.read(_MANIFEST_NAME)
            payload = archive.read(_PAYLOAD_NAME)
    except zipfile.BadZipFile as exc:
        raise ArtifactError(f"artifact {path} is not a valid archive: {exc}") from exc
    try:
        manifest = json.loads(manifest_bytes)
    except json.JSONDecodeError as exc:
        raise ArtifactError(f"artifact {path} has a malformed manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ArtifactError(f"artifact {path} manifest must be a JSON object")
    return manifest, payload


def load_manifest(path: str | os.PathLike) -> dict:
    """The artifact's manifest as a dict (for inspection/diffing).

    Validates archive structure and the payload checksum but does not
    construct the estimator.
    """
    manifest, payload = _read_archive(path)
    _validate(manifest, payload, path)
    return manifest


def _validate(manifest: dict, payload: bytes, path) -> None:
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ArtifactError(
            f"artifact {path} has format version {version!r}; this build "
            f"reads version {FORMAT_VERSION} only"
        )
    expected = manifest.get("payload_sha256")
    actual = hashlib.sha256(payload).hexdigest()
    if expected != actual:
        raise ArtifactError(
            f"artifact {path} payload checksum mismatch "
            f"(manifest {str(expected)[:12]}…, actual {actual[:12]}…); "
            "the file is corrupted or was modified"
        )


def load_model(path: str | os.PathLike) -> SelectivityEstimator:
    """Reconstruct a fitted estimator from an artifact.

    The estimator class is resolved through the registry by the
    manifest's ``estimator`` name, constructed via ``from_config``, and
    its fitted state restored through ``_load_state_dict`` — no refit,
    and ``predict_many`` output is bitwise-identical to the saved model's.
    """
    from repro.core.registry import estimator_class

    manifest, payload = _read_archive(path)
    _validate(manifest, payload, path)

    name = manifest.get("estimator")
    try:
        cls = estimator_class(name)
    except KeyError as exc:
        raise ArtifactError(f"artifact {path}: {exc.args[0]}") from None
    try:
        config = config_from_dict(name, manifest.get("config", {}))
    except (KeyError, TypeError, ValueError) as exc:
        raise ArtifactError(f"artifact {path} has an invalid config: {exc}") from exc

    state: Dict[str, object] = dict(manifest.get("state", {}))
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as npz:
            for key in npz.files:
                state[key] = npz[key]
    except (ValueError, OSError, zipfile.BadZipFile) as exc:
        raise ArtifactError(f"artifact {path} payload is unreadable: {exc}") from exc

    estimator = cls.from_config(config)
    try:
        estimator._load_state_dict(state)
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ArtifactError(
            f"artifact {path} state does not match {cls.__name__}: {exc}"
        ) from exc
    estimator._fitted = True
    return estimator
