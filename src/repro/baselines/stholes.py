"""STHoles — workload-aware histogram with hole drilling *and merging*.

A fuller reimplementation of STHoles [Bruno, Chaudhuri & Gravano, SIGMOD
2001], the query-driven histogram that ISOMER builds on (our
:class:`~repro.baselines.isomer.Isomer` uses a drilling phase only and
delegates weighting to maximum entropy).

STHoles maintains a *tree* of nested buckets; a bucket's region is its box
minus its children's boxes, and it carries a tuple-frequency estimate for
that region.  Feedback ``(R, s)`` is absorbed top-down:

1. **Drill**: in each bucket whose box intersects ``R``, the intersection
   is shrunk (so it partially overlaps no child) and carved out as a new
   child hole whose frequency comes from the feedback under the
   uniformity-within-R assumption; the parent's frequency is reduced
   proportionally to the volume carved from its region.  When the
   intersection covers the bucket's box exactly, the bucket's frequency is
   *refreshed* from the feedback instead (the original's update rule).
2. **Merge**: when the bucket budget is exceeded, the parent–child merge
   with the lowest frequency-redistribution penalty collapses a hole into
   its parent.

**Adaptation for aggregate feedback.**  The original STHoles inspects the
*result stream* of each query to count tuples per bucket; in the paper's
setting only the aggregate selectivity is observed.  The online
frequencies above therefore rest on a uniformity-within-the-query
assumption that degrades badly on skewed data (we measured it), and they
are kept only to drive the merge penalties during structure learning.
The final model weights are instead estimated by the paper's generic
Eq. (8) — simplex-constrained least squares over the tree's disjoint
*regions* — making STHoles here a third bucket-design strategy plugged
into the same weight-estimation phase as QuadHist and the arrangement
ERM.  (ISOMER's maximum-entropy phase was itself motivated by exactly
this weakness of STHoles's online updates.)
"""

from __future__ import annotations

import time
from typing import ClassVar, Dict, Sequence

import numpy as np

from repro.core._solve import solve_weights
from repro.core.config import STHolesConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.incremental import UpdateReport, assemble_design
from repro.core.workload import TrainingSet
from repro.geometry.index import BucketIndex, build_bucket_index
from repro.geometry.ranges import Box, Range, unit_box
from repro.geometry.sparse import sparse_intersection_volume_matrix
from repro.observability.tracing import span
from repro.solvers.simplex_ls import SolveReport

__all__ = ["STHoles"]

_MIN_VOLUME = 1e-12


class _Bucket:
    """A bucket: a box region minus the boxes of its child holes."""

    __slots__ = ("box", "children", "parent", "frequency")

    def __init__(self, box: Box, parent: "_Bucket | None", frequency: float):
        self.box = box
        self.children: list[_Bucket] = []
        self.parent = parent
        self.frequency = max(0.0, float(frequency))

    def region_volume(self) -> float:
        return max(0.0, self.box.volume() - sum(c.box.volume() for c in self.children))

    def subtree_frequency(self) -> float:
        return self.frequency + sum(c.subtree_frequency() for c in self.children)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()


class STHoles(SelectivityEstimator):
    """STHoles histogram with drilling and budget-driven merging.

    Parameters
    ----------
    max_buckets:
        Bucket budget; exceeding it triggers lowest-penalty merges.
    """

    Config: ClassVar = STHolesConfig

    def __init__(self, max_buckets: int = 500, domain: Box | None = None):
        super().__init__()
        if max_buckets < 1:
            raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
        self.max_buckets = int(max_buckets)
        self.domain = domain
        #: How the last weight solve was produced (fallback ladder record).
        self.solve_report_: SolveReport | None = None
        #: What the last ``partial_fit`` did; None after a full fit.
        self.update_report_: UpdateReport | None = None
        self._root: _Bucket | None = None
        self._count = 0
        self._index: BucketIndex | None = None
        self._history: TrainingSet | None = None
        #: Cached ``Vol(box_j ∩ R_i)`` matrix over the current history.
        #: Bucket boxes are immutable once drilled (drilling only adds
        #: holes, merging only removes buckets), so surviving columns stay
        #: valid across updates; the region subtraction is re-derived from
        #: it each solve.
        self._overlap_cache: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Training
    # ------------------------------------------------------------------

    def _fit(self, training: TrainingSet) -> None:
        if not all(isinstance(q, Box) for q in training.queries):
            raise TypeError("STHoles supports orthogonal-range (Box) queries only")
        domain = self.domain if self.domain is not None else unit_box(training.dim)
        self._root = _Bucket(domain, parent=None, frequency=1.0)
        self._count = 1
        self._history = training
        for sample in training:
            if sample.query.volume() <= _MIN_VOLUME:
                continue
            self._drill(self._root, sample.query, sample.selectivity)
            if self._count > self.max_buckets:
                self._merge_down_to_budget()
        self._estimate_weights(training)

    def partial_fit(
        self,
        queries: Sequence[Range],
        selectivities: Sequence[float],
        warm_start: bool = False,
    ) -> "STHoles":
        """Incrementally absorb new query feedback.

        STHoles is *defined* by one-sample-at-a-time drilling, so the
        structure update is naturally incremental: the new batch drills
        (and possibly merges) against the existing tree, exactly as a
        refit on the concatenated history would — bucket boxes never
        mutate after creation, so the cached box-overlap columns of
        surviving buckets stay valid.  Only the new holes' columns and
        the new queries' rows are computed; the region subtraction and
        the Eq. (8) solve run on the assembled matrix, warm-started from
        the previous weights when ``warm_start=True``.

        Calling ``partial_fit`` on an unfitted estimator is equivalent
        to ``fit``.
        """
        new = TrainingSet(queries, selectivities)
        if not self._fitted:
            self.fit(queries, selectivities)
            return self
        if self._history is None or self._overlap_cache is None:
            raise RuntimeError(
                "partial_fit needs the feedback history and overlap cache, "
                "which persisted artifacts do not carry; refit from scratch "
                "instead"
            )
        if not all(isinstance(q, Box) for q in new.queries):
            raise TypeError("STHoles supports orthogonal-range (Box) queries only")
        if new.dim != self._history.dim:
            raise ValueError("partial_fit dimension mismatch with earlier feedback")
        started = time.perf_counter()
        combined = TrainingSet(
            list(self._history.queries) + list(new.queries),
            np.concatenate([self._history.selectivities, new.selectivities]),
        )
        old_buckets = self._buckets
        old_col = {id(b): i for i, b in enumerate(old_buckets)}
        old_weights = self._weights
        cached = self._overlap_cache
        n_new = len(new)
        n_old = len(combined) - n_new

        with span("fit/partition", incremental=True) as partition_span:
            for sample in new:
                if sample.query.volume() <= _MIN_VOLUME:
                    continue
                self._drill(self._root, sample.query, sample.selectivity)
                if self._count > self.max_buckets:
                    self._merge_down_to_budget()
            partition_span.annotate(buckets=self._count)

        # Flatten the updated tree and rebuild the per-bucket arrays (the
        # order may have changed: new holes interleave in preorder).
        self._buckets = list(self._root.walk())
        self._child_index = []
        index_of = {id(b): i for i, b in enumerate(self._buckets)}
        for bucket in self._buckets:
            self._child_index.append([index_of[id(c)] for c in bucket.children])
        self._box_lows = np.stack([b.box.lows for b in self._buckets])
        self._box_highs = np.stack([b.box.highs for b in self._buckets])
        self._region_volumes = np.array([b.region_volume() for b in self._buckets])
        self._index = build_bucket_index(self._box_lows, self._box_highs)

        m_new = len(self._buckets)
        reused = np.fromiter(
            (id(b) in old_col for b in self._buckets), dtype=bool, count=m_new
        )
        origin = np.fromiter(
            (old_col.get(id(b), -1) for b in self._buckets), dtype=np.int64, count=m_new
        )
        usable_cache = cached.shape == (n_old, len(old_buckets))
        with span(
            "fit/design-matrix",
            rows=n_new,
            buckets=m_new,
            incremental=usable_cache,
        ):
            if usable_cache:
                fresh = ~reused
                n_fresh = int(fresh.sum())
                if n_fresh and n_old:
                    sub_index = build_bucket_index(
                        self._box_lows[fresh], self._box_highs[fresh]
                    )
                    fresh_block = sparse_intersection_volume_matrix(
                        combined.queries[:n_old], sub_index
                    )
                else:
                    fresh_block = np.zeros((n_old, n_fresh))
                if n_new:
                    new_rows = sparse_intersection_volume_matrix(
                        new.queries, self._index
                    )
                else:
                    new_rows = np.zeros((0, m_new))
                overlaps = assemble_design(cached, reused, origin, fresh_block, new_rows)
            else:
                overlaps = self._box_overlap_matrix(combined.queries)
            self._overlap_cache = overlaps
            design = self._fractions_from_overlaps(overlaps)
        w0 = None
        if warm_start:
            w0 = np.zeros(m_new)
            w0[reused] = old_weights[origin[reused]]
            total = float(w0.sum())
            w0 = w0 / total if total > 0.0 else np.full(m_new, 1.0 / m_new)
        weights, self.solve_report_ = solve_weights(
            design, combined.selectivities, warm_start=w0
        )
        self._weights = weights
        self._history = combined
        self.update_report_ = UpdateReport(
            rows_appended=n_new,
            rows_total=len(combined),
            buckets_before=len(old_buckets),
            buckets_after=m_new,
            columns_reused=int(reused.sum()),
            columns_recomputed=int((~reused).sum()),
            warm_started=warm_start,
            full_rebuild=not usable_cache,
            seconds=time.perf_counter() - started,
            residual=self.solve_report_.residual,
            rung=self.solve_report_.rung,
        )
        return self

    def _drill(self, bucket: _Bucket, query: Box, selectivity: float) -> None:
        """Top-down drilling: children first, then this bucket's region."""
        candidate = bucket.box.intersect(query)
        if candidate is None or candidate.volume() <= _MIN_VOLUME:
            return
        for child in list(bucket.children):
            self._drill(child, query, selectivity)

        query_volume = query.volume()
        if candidate == bucket.box:
            # Feedback covers the whole box: refresh this bucket's region
            # frequency (tuples in the box minus tuples already attributed
            # to the children).
            tuples_in_box = selectivity * candidate.volume() / query_volume
            children_freq = sum(c.subtree_frequency() for c in bucket.children)
            bucket.frequency = max(0.0, tuples_in_box - children_freq)
            return

        candidate = self._shrink(bucket, candidate)
        if candidate is None or candidate.volume() <= _MIN_VOLUME:
            return
        tuples_in_hole = selectivity * candidate.volume() / query_volume
        # Negligible holes carry no information worth a bucket: their
        # density matches the parent's or their mass is noise-level.
        if tuples_in_hole < 1e-6 and candidate.volume() < 1e-4:
            return
        moved = [c for c in bucket.children if candidate.contains_box(c.box)]
        hole_frequency = max(
            0.0, tuples_in_hole - sum(c.subtree_frequency() for c in moved)
        )
        # Carve the hole's volume out of the parent's region and reduce the
        # parent's frequency proportionally (the original's update).
        region_before = bucket.region_volume()
        carved = candidate.volume() - sum(c.box.volume() for c in moved)
        if region_before > _MIN_VOLUME and carved > 0:
            bucket.frequency *= max(0.0, 1.0 - carved / region_before)
        hole = _Bucket(candidate, parent=bucket, frequency=hole_frequency)
        for child in moved:
            bucket.children.remove(child)
            child.parent = hole
            hole.children.append(child)
        bucket.children.append(hole)
        self._count += 1

    def _shrink(self, bucket: _Bucket, candidate: Box) -> Box | None:
        """Clip ``candidate`` until it partially overlaps no child."""
        current = candidate
        for _ in range(2 * bucket.box.dim + 2):
            offender = None
            for child in bucket.children:
                inter = current.intersect(child.box)
                if inter is None or inter.volume() <= _MIN_VOLUME:
                    continue
                if current.contains_box(child.box):
                    continue  # full containment: the child just moves inside
                offender = child
                break
            if offender is None:
                return current
            current = self._clip_away(current, offender.box)
            if current is None or current.volume() <= _MIN_VOLUME:
                return None
        return None

    @staticmethod
    def _clip_away(candidate: Box, obstacle: Box) -> Box | None:
        """Largest sub-box of ``candidate`` avoiding ``obstacle``."""
        best: Box | None = None
        best_volume = -1.0
        for axis in range(candidate.dim):
            if obstacle.lows[axis] > candidate.lows[axis]:
                highs = candidate.highs.copy()
                highs[axis] = obstacle.lows[axis]
                piece = Box(candidate.lows.copy(), highs)
                if piece.volume() > best_volume:
                    best, best_volume = piece, piece.volume()
            if obstacle.highs[axis] < candidate.highs[axis]:
                lows = candidate.lows.copy()
                lows[axis] = obstacle.highs[axis]
                piece = Box(lows, candidate.highs.copy())
                if piece.volume() > best_volume:
                    best, best_volume = piece, piece.volume()
        return best

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def _merge_down_to_budget(self) -> None:
        """Batched merging: one penalty scan, cheapest merges first.

        A single pass computes every parent–child merge penalty, then
        applies them cheapest-first, skipping nodes already touched this
        round (whose penalties became stale).  Repeats until the budget is
        met — at most a few passes in practice, versus one full scan per
        merge for the naive loop.
        """
        while self._count > self.max_buckets:
            candidates = [
                (self._merge_penalty(b), id(b), b)
                for b in self._root.walk()
                if b.parent is not None
            ]
            if not candidates:
                return
            candidates.sort(key=lambda t: (t[0], t[1]))
            touched: set[int] = set()
            merged_any = False
            for _, _, child in candidates:
                if self._count <= self.max_buckets:
                    break
                parent = child.parent
                if parent is None or id(child) in touched or id(parent) in touched:
                    continue
                touched.add(id(child))
                touched.add(id(parent))
                self._merge_into_parent(child)
                merged_any = True
            if not merged_any:
                return

    def _merge_into_parent(self, child: _Bucket) -> None:
        parent = child.parent
        parent.children.remove(child)
        for grandchild in child.children:
            grandchild.parent = parent
            parent.children.append(grandchild)
        parent.frequency += child.frequency
        self._count -= 1

    @staticmethod
    def _merge_penalty(child: _Bucket) -> float:
        """Frequency-redistribution error of merging ``child`` into parent."""
        parent = child.parent
        v_child = max(child.region_volume(), _MIN_VOLUME)
        v_parent = max(parent.region_volume(), _MIN_VOLUME)
        merged_density = (child.frequency + parent.frequency) / (v_child + v_parent)
        return abs(child.frequency - merged_density * v_child) + abs(
            parent.frequency - merged_density * v_parent
        )

    # ------------------------------------------------------------------
    # Weight estimation (Eq. 8 over tree regions) and prediction
    # ------------------------------------------------------------------

    def _estimate_weights(self, training: TrainingSet) -> None:
        self._buckets = list(self._root.walk())
        self._child_index = []
        index_of = {id(b): i for i, b in enumerate(self._buckets)}
        for bucket in self._buckets:
            self._child_index.append([index_of[id(c)] for c in bucket.children])
        self._box_lows = np.stack([b.box.lows for b in self._buckets])
        self._box_highs = np.stack([b.box.highs for b in self._buckets])
        self._region_volumes = np.array([b.region_volume() for b in self._buckets])
        self._index = build_bucket_index(self._box_lows, self._box_highs)
        overlaps = self._box_overlap_matrix(training.queries)
        self._overlap_cache = overlaps
        design = self._fractions_from_overlaps(overlaps)
        self._weights, self.solve_report_ = solve_weights(
            design, training.selectivities
        )

    def _region_fraction_row(self, query: Range) -> np.ndarray:
        """Per-region coverage fractions ``Vol(region_j ∩ R)/Vol(region_j)``."""
        from repro.geometry.volume import batch_intersection_volumes

        box_overlaps = batch_intersection_volumes(self._box_lows, self._box_highs, query)
        region_overlaps = box_overlaps.copy()
        for i, children in enumerate(self._child_index):
            for c in children:
                region_overlaps[i] -= box_overlaps[c]
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(
                self._region_volumes > _MIN_VOLUME,
                region_overlaps / np.maximum(self._region_volumes, _MIN_VOLUME),
                0.0,
            )
        return np.clip(fractions, 0.0, 1.0)

    def _box_overlap_matrix(self, queries: Sequence[Range]) -> np.ndarray:
        """``Vol(box_j ∩ R_i)`` per (query, bucket box) — the cacheable part."""
        from repro.geometry.batch import intersection_volume_matrix

        if self._index is not None:
            return sparse_intersection_volume_matrix(queries, self._index)
        return intersection_volume_matrix(queries, self._box_lows, self._box_highs)

    def _fractions_from_overlaps(self, box_overlaps: np.ndarray) -> np.ndarray:
        """Region subtraction + normalisation, from raw box overlaps.

        Child columns are subtracted in the same order as the scalar row
        loop so the two paths agree to floating-point identity.
        """
        region_overlaps = box_overlaps.copy()
        for i, children in enumerate(self._child_index):
            for c in children:
                region_overlaps[:, i] -= box_overlaps[:, c]
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(
                self._region_volumes[None, :] > _MIN_VOLUME,
                region_overlaps / np.maximum(self._region_volumes[None, :], _MIN_VOLUME),
                0.0,
            )
        return np.clip(fractions, 0.0, 1.0)

    def _region_fraction_matrix(self, queries: Sequence[Range]) -> np.ndarray:
        """Per-region coverage fractions for a whole workload at once."""
        return self._fractions_from_overlaps(self._box_overlap_matrix(queries))

    def _predict_one(self, query: Range) -> float:
        return float(self._region_fraction_row(query) @ self._weights)

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray:
        return self._region_fraction_matrix(queries) @ self._weights

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return self._count

    def bucket_boxes(self) -> list[Box]:
        """All bucket boxes (nested), for inspection."""
        self._check_fitted()
        return [b.box for b in self._root.walk()]

    def total_frequency(self) -> float:
        """Sum of region frequencies (≈ 1 when feedback is consistent)."""
        self._check_fitted()
        return float(self._root.subtree_frequency())

    # ------------------------------------------------------------------
    # Persistence (repro.persistence)
    # ------------------------------------------------------------------

    def _state_dict(self) -> Dict[str, object]:
        # The bucket tree flattens to preorder (the `walk()` order used by
        # _estimate_weights): parent indices reference earlier entries, so
        # the tree rebuilds in one forward pass with child order preserved.
        index_of = {id(b): i for i, b in enumerate(self._buckets)}
        parents = np.array(
            [index_of[id(b.parent)] if b.parent is not None else -1 for b in self._buckets],
            dtype=np.int64,
        )
        return {
            "parents": parents,
            "frequencies": np.array([b.frequency for b in self._buckets]),
            "box_lows": self._box_lows,
            "box_highs": self._box_highs,
            "region_volumes": self._region_volumes,
            "weights": self._weights,
        }

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        parents = np.asarray(state["parents"], dtype=np.int64)
        frequencies = np.asarray(state["frequencies"], dtype=float)
        self._box_lows = np.asarray(state["box_lows"], dtype=float)
        self._box_highs = np.asarray(state["box_highs"], dtype=float)
        self._region_volumes = np.asarray(state["region_volumes"], dtype=float)
        self._weights = np.asarray(state["weights"], dtype=float)
        buckets: list[_Bucket] = []
        for i in range(parents.shape[0]):
            parent = buckets[int(parents[i])] if parents[i] >= 0 else None
            bucket = _Bucket(
                Box(self._box_lows[i], self._box_highs[i]), parent, frequencies[i]
            )
            if parent is not None:
                parent.children.append(bucket)
            buckets.append(bucket)
        self._root = buckets[0]
        self._buckets = buckets
        self._child_index = []
        index_of = {id(b): i for i, b in enumerate(buckets)}
        for bucket in buckets:
            self._child_index.append([index_of[id(c)] for c in bucket.children])
        self._count = len(buckets)
        # Rebuilt deterministically from the persisted bucket arrays; the
        # index itself is never serialised.
        self._index = build_bucket_index(self._box_lows, self._box_highs)
        # Feedback history and the overlap cache are fit-time structures;
        # a restored model cannot partial_fit.
        self._history = None
        self._overlap_cache = None
