"""Baseline estimators the paper compares against.

* :class:`~repro.baselines.isomer.Isomer` — ISOMER [Srivastava et al.,
  ICDE 2006]: STHoles-style hole-drilling buckets + maximum-entropy
  weights.  The most accurate baseline in the paper, but slow and limited
  to orthogonal ranges in low dimension.
* :class:`~repro.baselines.quicksel.QuickSel` — QuickSel [Park et al.,
  SIGMOD 2020]: a mixture of uniform kernels whose weights solve a
  variance-minimising QP with selectivity-consistency constraints.  Weights
  may be negative, which is the source of the non-monotone estimates the
  paper's Q-error tables expose.
* :mod:`~repro.baselines.trivial` — sanity floors (uniform-density and
  train-mean predictors).

All are reimplemented from their published descriptions; like the paper's
comparison, they see only the query workload, never the data.
"""

from repro.baselines.isomer import Isomer
from repro.baselines.stholes import STHoles
from repro.baselines.classic import (
    AVIProductHistogram,
    EquiDepthHistogram,
    EquiWidthHistogram,
    VOptimalHistogram,
    WaveletHistogram,
)
from repro.baselines.quicksel import QuickSel
from repro.baselines.regression import GradientBoostedTrees, LWRegression, RegressionTree
from repro.baselines.trivial import MeanEstimator, UniformEstimator

__all__ = [
    "Isomer",
    "STHoles",
    "QuickSel",
    "MeanEstimator",
    "UniformEstimator",
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "VOptimalHistogram",
    "WaveletHistogram",
    "LWRegression",
    "RegressionTree",
    "GradientBoostedTrees",
    "AVIProductHistogram",
]
