"""Classic *data-driven* 1-D histograms — oracle baselines.

The paper's comparison is restricted to query-driven methods (models that
see only workload feedback).  These classical estimators see the *data*
instead, so they are not part of the paper's fair comparison — we include
them as **oracle baselines**: the accuracy a traditional optimizer could
reach on 1-D range predicates with full data access, a useful yardstick
next to the learned, feedback-only models.

* :class:`EquiWidthHistogram` — fixed-width buckets (the simplest
  optimizer statistic).
* :class:`EquiDepthHistogram` — quantile buckets [Piatetsky-Shapiro &
  Connell 1984]; PostgreSQL's default.
* :class:`VOptimalHistogram` — minimum weighted-variance bucketing via the
  classical O(n^2 * k) dynamic program [Jagadish et al. 1998], computed on
  a value grid.
* :class:`WaveletHistogram` — Haar-wavelet synopsis [Matias, Vitter &
  Wang 1998; the paper's reference 29]: keep the largest-magnitude
  (normalised) coefficients of the cumulative-frequency-domain transform.

All implement :class:`~repro.core.estimator.SelectivityEstimator` so they
drop into the same harness, but ``fit_data`` must be called with the data
column (their ``_fit`` from query feedback raises: they are *not*
query-driven).
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import SelectivityEstimator
from repro.core.workload import TrainingSet
from repro.geometry.ranges import Box, Range

__all__ = [
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "VOptimalHistogram",
    "WaveletHistogram",
    "AVIProductHistogram",
]


class _DataDriven1D(SelectivityEstimator):
    """Shared scaffolding: fit from a data column, answer 1-D box queries."""

    def __init__(self):
        super().__init__()
        self._edges: np.ndarray | None = None  # bucket boundaries, len k+1
        self._masses: np.ndarray | None = None  # bucket probability masses

    def fit_data(self, values: np.ndarray) -> "_DataDriven1D":
        """Build the histogram from a 1-D data column in [0, 1]."""
        column = np.asarray(values, dtype=float).ravel()
        if column.size == 0:
            raise ValueError("empty data column")
        if not np.all(np.isfinite(column)):
            raise ValueError("data must be finite")
        if column.min() < -1e-9 or column.max() > 1 + 1e-9:
            raise ValueError("data must be normalised into [0, 1]")
        self._build(np.clip(column, 0.0, 1.0))
        self._fitted = True
        return self

    def _build(self, column: np.ndarray) -> None:
        raise NotImplementedError

    def _fit(self, training: TrainingSet) -> None:
        raise TypeError(
            f"{type(self).__name__} is data-driven: call fit_data(column), "
            "not fit(queries, selectivities)"
        )

    def _predict_one(self, query: Range) -> float:
        if not isinstance(query, Box) or query.dim != 1:
            raise TypeError("data-driven 1-D histograms answer 1-D Box queries only")
        lo = float(query.lows[0])
        hi = float(query.highs[0])
        total = 0.0
        for left, right, mass in zip(self._edges[:-1], self._edges[1:], self._masses):
            width = right - left
            if width <= 0:
                continue
            overlap = max(0.0, min(hi, right) - max(lo, left))
            if overlap > 0:
                total += mass * overlap / width
        return total

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return int(self._masses.shape[0])


class EquiWidthHistogram(_DataDriven1D):
    """Fixed-width buckets over [0, 1]."""

    def __init__(self, buckets: int = 50):
        super().__init__()
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.buckets = int(buckets)

    def _build(self, column: np.ndarray) -> None:
        counts, edges = np.histogram(column, bins=self.buckets, range=(0.0, 1.0))
        self._edges = edges
        self._masses = counts / column.size


class EquiDepthHistogram(_DataDriven1D):
    """Quantile buckets: equal tuple counts per bucket."""

    def __init__(self, buckets: int = 50):
        super().__init__()
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        self.buckets = int(buckets)

    def _build(self, column: np.ndarray) -> None:
        quantiles = np.linspace(0.0, 1.0, self.buckets + 1)
        edges = np.quantile(column, quantiles)
        edges[0] = 0.0
        edges[-1] = 1.0
        # Heavy ties produce duplicate quantiles; collapse them so every
        # bucket has positive width (masses are then recounted exactly —
        # np.histogram treats the final bin as closed).
        edges = np.unique(np.maximum.accumulate(edges))
        if edges.shape[0] < 2:
            edges = np.array([0.0, 1.0])
        counts, _ = np.histogram(column, bins=edges)
        self._edges = edges
        self._masses = counts / column.size


class VOptimalHistogram(_DataDriven1D):
    """Minimum weighted-variance bucketing (classical DP).

    The column is first discretised onto a uniform value grid of
    ``grid`` cells; the DP then finds the contiguous partition of the grid
    into ``buckets`` pieces minimising the total within-bucket variance of
    cell frequencies — the V-optimal criterion of Jagadish et al. (1998),
    solved exactly in ``O(grid^2 * buckets)``.
    """

    def __init__(self, buckets: int = 20, grid: int = 200):
        super().__init__()
        if buckets < 1:
            raise ValueError(f"buckets must be >= 1, got {buckets}")
        if grid < buckets:
            raise ValueError(f"grid ({grid}) must be >= buckets ({buckets})")
        self.buckets = int(buckets)
        self.grid = int(grid)

    def _build(self, column: np.ndarray) -> None:
        counts, grid_edges = np.histogram(column, bins=self.grid, range=(0.0, 1.0))
        freq = counts.astype(float)
        n = self.grid
        k = min(self.buckets, n)
        prefix = np.concatenate([[0.0], np.cumsum(freq)])
        prefix_sq = np.concatenate([[0.0], np.cumsum(freq**2)])

        def sse(i: int, j: int) -> float:
            """Sum of squared errors of cells i..j-1 vs their mean."""
            total = prefix[j] - prefix[i]
            total_sq = prefix_sq[j] - prefix_sq[i]
            length = j - i
            return total_sq - total * total / length

        INF = float("inf")
        cost = np.full((k + 1, n + 1), INF)
        split = np.zeros((k + 1, n + 1), dtype=int)
        cost[0, 0] = 0.0
        for b in range(1, k + 1):
            for j in range(b, n + 1):
                best = INF
                best_i = b - 1
                for i in range(b - 1, j):
                    if cost[b - 1, i] == INF:
                        continue
                    candidate = cost[b - 1, i] + sse(i, j)
                    if candidate < best:
                        best = candidate
                        best_i = i
                cost[b, j] = best
                split[b, j] = best_i

        # Recover bucket boundaries.
        boundaries = [n]
        j = n
        for b in range(k, 0, -1):
            j = split[b, j]
            boundaries.append(j)
        boundaries.reverse()
        edges = grid_edges[boundaries]
        masses = np.array(
            [
                (prefix[j] - prefix[i]) / column.size
                for i, j in zip(boundaries[:-1], boundaries[1:])
            ]
        )
        self._edges = edges
        self._masses = masses


class WaveletHistogram(_DataDriven1D):
    """Haar-wavelet synopsis of the frequency vector (reference [29]).

    The frequency vector over a power-of-two grid is Haar-transformed
    (with the standard level normalisation); all but the
    ``coefficients`` largest-magnitude normalised coefficients are zeroed;
    the inverse transform (clipped at 0, renormalised) gives the
    approximate frequency vector used for estimation.
    """

    def __init__(self, coefficients: int = 32, grid: int = 256):
        super().__init__()
        if coefficients < 1:
            raise ValueError(f"coefficients must be >= 1, got {coefficients}")
        if grid & (grid - 1) != 0:
            raise ValueError(f"grid must be a power of two, got {grid}")
        self.coefficients = int(coefficients)
        self.grid = int(grid)

    @staticmethod
    def _haar_forward(vector: np.ndarray) -> np.ndarray:
        data = vector.astype(float).copy()
        output = data.copy()
        length = data.shape[0]
        while length > 1:
            half = length // 2
            sums = (data[0:length:2] + data[1:length:2]) / np.sqrt(2.0)
            diffs = (data[0:length:2] - data[1:length:2]) / np.sqrt(2.0)
            output[:half] = sums
            output[half:length] = diffs
            data[:length] = output[:length]
            length = half
        return data

    @staticmethod
    def _haar_inverse(coeffs: np.ndarray) -> np.ndarray:
        data = coeffs.astype(float).copy()
        length = 2
        n = data.shape[0]
        while length <= n:
            half = length // 2
            sums = data[:half].copy()
            diffs = data[half:length].copy()
            data[0:length:2] = (sums + diffs) / np.sqrt(2.0)
            data[1:length:2] = (sums - diffs) / np.sqrt(2.0)
            length *= 2
        return data

    def _build(self, column: np.ndarray) -> None:
        counts, edges = np.histogram(column, bins=self.grid, range=(0.0, 1.0))
        freq = counts / column.size
        transformed = self._haar_forward(freq)
        keep = min(self.coefficients, self.grid)
        threshold_idx = np.argsort(np.abs(transformed))[::-1][:keep]
        sparse = np.zeros_like(transformed)
        sparse[threshold_idx] = transformed[threshold_idx]
        approx = np.maximum(self._haar_inverse(sparse), 0.0)
        total = approx.sum()
        if total > 0:
            approx /= total
        self._edges = edges
        self._masses = approx

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return self.coefficients


class AVIProductHistogram(SelectivityEstimator):
    """Attribute-value-independence estimator: product of 1-D marginals.

    The multi-dimensional workhorse of classical optimizers [Poosala &
    Ioannidis 1997, the paper's reference 38, studied exactly to expose
    this assumption]: keep an equi-depth histogram per attribute and
    estimate a conjunctive range as the *product* of per-attribute
    selectivities.  Exact when attributes are independent; on correlated
    data the product under- or over-estimates — the classical failure mode
    that motivates both multi-dimensional histograms and the learned
    models in this repository.

    Data-driven (an oracle baseline): call ``fit_data(rows)`` with the
    full table.
    """

    def __init__(self, buckets_per_dim: int = 64):
        super().__init__()
        if buckets_per_dim < 1:
            raise ValueError(f"buckets_per_dim must be >= 1, got {buckets_per_dim}")
        self.buckets_per_dim = int(buckets_per_dim)
        self._marginals: list[EquiDepthHistogram] | None = None

    def fit_data(self, rows: np.ndarray) -> "AVIProductHistogram":
        """Build per-attribute marginals from the data table."""
        data = np.asarray(rows, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"rows must be a non-empty (n, d) array, got {data.shape}")
        self._marginals = [
            EquiDepthHistogram(buckets=self.buckets_per_dim).fit_data(data[:, axis])
            for axis in range(data.shape[1])
        ]
        self._fitted = True
        return self

    def _fit(self, training: TrainingSet) -> None:
        raise TypeError(
            "AVIProductHistogram is data-driven: call fit_data(rows), "
            "not fit(queries, selectivities)"
        )

    def _predict_one(self, query: Range) -> float:
        if not isinstance(query, Box) or query.dim != len(self._marginals):
            raise TypeError(
                f"AVIProductHistogram answers {len(self._marginals)}-D Box queries only"
            )
        product = 1.0
        for axis, marginal in enumerate(self._marginals):
            slice_1d = Box([query.lows[axis]], [query.highs[axis]])
            product *= marginal.predict(slice_1d)
            if product == 0.0:
                break
        return product

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return sum(m.model_size for m in self._marginals)
