"""Trivial baselines: sanity floors for the benchmarks.

Any learned model should comfortably beat both of these; the benchmark
harness includes them so regressions in the real learners are visible at a
glance.
"""

from __future__ import annotations

from typing import ClassVar, Dict

import numpy as np

from repro.core.config import MeanConfig, UniformConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.workload import TrainingSet
from repro.geometry.ranges import Box, Range, unit_box
from repro.geometry.volume import range_volume

__all__ = ["UniformEstimator", "MeanEstimator"]


class UniformEstimator(SelectivityEstimator):
    """Assumes uniformly distributed data: ``s(R) = Vol(R ∩ domain)``.

    This is the attribute-value-independence / uniformity assumption of
    classical optimisers, the strawman the learned-estimation literature
    improves on.
    """

    Config: ClassVar = UniformConfig

    def __init__(self, domain: Box | None = None):
        super().__init__()
        self.domain = domain
        self._resolved_domain: Box | None = None

    def _fit(self, training: TrainingSet) -> None:
        self._resolved_domain = (
            self.domain if self.domain is not None else unit_box(training.dim)
        )

    def _predict_one(self, query: Range) -> float:
        domain_volume = self._resolved_domain.volume()
        if domain_volume <= 0.0:
            return 0.0
        return range_volume(query, self._resolved_domain) / domain_volume

    @property
    def model_size(self) -> int:
        return 1

    def _state_dict(self) -> Dict[str, object]:
        return {
            "domain_lows": self._resolved_domain.lows,
            "domain_highs": self._resolved_domain.highs,
        }

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        self._resolved_domain = Box(
            np.asarray(state["domain_lows"], dtype=float),
            np.asarray(state["domain_highs"], dtype=float),
        )


class MeanEstimator(SelectivityEstimator):
    """Predicts the mean training selectivity for every query."""

    Config: ClassVar = MeanConfig

    def __init__(self):
        super().__init__()
        self._mean = 0.0

    def _fit(self, training: TrainingSet) -> None:
        self._mean = float(training.selectivities.mean())

    def _predict_one(self, query: Range) -> float:
        return self._mean

    @property
    def model_size(self) -> int:
        return 1

    def _state_dict(self) -> Dict[str, object]:
        return {"mean": float(self._mean)}

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        self._mean = float(state["mean"])
