"""QuickSel baseline — selectivity learning with mixture models.

Reimplementation of QuickSel [Park, Zhong & Mozafari, SIGMOD 2020].  The
data distribution is modelled as a mixture of uniform *kernels*

.. math:: f(x) = \\sum_j w_j \\, \\frac{\\mathbf{1}(x \\in G_j)}{Vol(G_j)},

with one kernel per training query (the query's own region, QuickSel's
default kernel placement) plus the whole domain.  The weights solve the
variance-minimising quadratic program

.. math::
    \\min_w \\; \\int f(x)^2 dx = w^T V w \\quad \\text{s.t.} \\quad
    A w = s, \\; \\mathbf{1}^T w = 1,

where ``V_{jk} = Vol(G_j ∩ G_k) / (Vol(G_j) Vol(G_k))`` and
``A_{ij} = Vol(G_j ∩ R_i) / Vol(G_j)``.  Crucially — and faithfully to the
original — **weights may be negative**: QuickSel trades validity of the
mixture for closed-form training, which is exactly why the paper's Q-error
tables show it blowing up on low-selectivity workloads while QuadHist and
PtsHist (whose weights live on the simplex) stay bounded.

The equality constraints of real feedback can be inconsistent, so we solve
the standard penalised form (a ridge-regularised KKT system), equivalent to
the original for consistent feedback.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Sequence

import numpy as np

from repro.core.config import QuickSelConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.workload import TrainingSet
from repro.geometry.batch import coverage_dot, intersection_volume_matrix
from repro.geometry.index import BucketIndex, build_bucket_index
from repro.geometry.sparse import (
    sparse_coverage_dot,
    sparse_intersection_volume_matrix,
)
from repro.geometry.ranges import Box, Range, unit_box
from repro.geometry.volume import batch_intersection_volumes

__all__ = ["QuickSel"]


class QuickSel(SelectivityEstimator):
    """QuickSel: uniform-mixture model fitted by a variance-minimising QP.

    Parameters
    ----------
    constraint_weight:
        Penalty on constraint violation ``||A w - s||^2`` (the hard
        constraints of the original become exact as this grows).
    ridge:
        Tikhonov term keeping the KKT system well conditioned.
    clip_predictions:
        QuickSel's raw estimates can leave ``[0, 1]`` (negative weights);
        the public ``predict`` clips regardless, this flag additionally
        clips inside ``_predict_one`` for the raw-inspection API.
    """

    Config: ClassVar = QuickSelConfig

    def __init__(
        self,
        constraint_weight: float = 1e4,
        ridge: float = 1e-8,
        domain: Box | None = None,
    ):
        super().__init__()
        if constraint_weight <= 0:
            raise ValueError(f"constraint_weight must be positive, got {constraint_weight}")
        if ridge < 0:
            raise ValueError(f"ridge must be non-negative, got {ridge}")
        self.constraint_weight = float(constraint_weight)
        self.ridge = float(ridge)
        self.domain = domain
        self._kernel_lows: np.ndarray | None = None
        self._kernel_highs: np.ndarray | None = None
        self._kernel_volumes: np.ndarray | None = None
        self._index: BucketIndex | None = None
        self._weights: np.ndarray | None = None

    def _fit(self, training: TrainingSet) -> None:
        if not all(isinstance(q, Box) for q in training.queries):
            raise TypeError("QuickSel supports orthogonal-range (Box) queries only")
        domain = self.domain if self.domain is not None else unit_box(training.dim)
        kernels = [domain] + [q for q in training.queries if q.volume() > 0.0]
        self._kernel_lows = np.stack([k.lows for k in kernels])
        self._kernel_highs = np.stack([k.highs for k in kernels])
        self._kernel_volumes = np.prod(self._kernel_highs - self._kernel_lows, axis=1)
        self._index = build_bucket_index(self._kernel_lows, self._kernel_highs)

        variance = self._variance_matrix()
        design = self._coverage_matrix(training.queries)
        self._weights = self._solve_qp(variance, design, training.selectivities)

    def _variance_matrix(self) -> np.ndarray:
        """``V_{jk} = Vol(G_j ∩ G_k) / (Vol(G_j) Vol(G_k))`` for all pairs."""
        lows = self._kernel_lows
        highs = self._kernel_highs
        m = lows.shape[0]
        # Pairwise interval overlaps, vectorised: (m, m, d).
        pair_lows = np.maximum(lows[:, None, :], lows[None, :, :])
        pair_highs = np.minimum(highs[:, None, :], highs[None, :, :])
        widths = np.maximum(pair_highs - pair_lows, 0.0)
        overlap = np.prod(widths, axis=2)
        denom = self._kernel_volumes[:, None] * self._kernel_volumes[None, :]
        return overlap / denom

    def _coverage_row(self, query: Range) -> np.ndarray:
        """``Vol(G_j ∩ R) / Vol(G_j)`` for all kernels."""
        overlaps = batch_intersection_volumes(self._kernel_lows, self._kernel_highs, query)
        return np.clip(overlaps / self._kernel_volumes, 0.0, 1.0)

    def _coverage_matrix(self, queries: Sequence[Range]) -> np.ndarray:
        """``Vol(G_j ∩ R_i) / Vol(G_j)`` for a whole workload at once."""
        if self._index is not None:
            overlaps = sparse_intersection_volume_matrix(
                queries, self._index, self._kernel_volumes
            )
        else:
            overlaps = intersection_volume_matrix(
                queries, self._kernel_lows, self._kernel_highs, self._kernel_volumes
            )
        return np.clip(overlaps / self._kernel_volumes[None, :], 0.0, 1.0)

    def _solve_qp(self, variance: np.ndarray, design: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Penalised equality-constrained QP via its KKT linear system.

        Minimise ``w^T V w + C ||A w - s||^2`` subject to ``1^T w = 1``.
        """
        m = variance.shape[0]
        c = self.constraint_weight
        hessian = 2.0 * variance + 2.0 * c * (design.T @ design)
        hessian[np.diag_indices(m)] += self.ridge
        kkt = np.zeros((m + 1, m + 1))
        kkt[:m, :m] = hessian
        kkt[:m, m] = 1.0
        kkt[m, :m] = 1.0
        rhs = np.zeros(m + 1)
        rhs[:m] = 2.0 * c * (design.T @ s)
        rhs[m] = 1.0
        try:
            solution = np.linalg.solve(kkt, rhs)
        except np.linalg.LinAlgError:
            solution, *_ = np.linalg.lstsq(kkt, rhs, rcond=None)
        return solution[:m]

    def _predict_one(self, query: Range) -> float:
        # Raw mixture estimate; the public predict() clips to [0, 1].
        return float(self._coverage_row(query) @ self._weights)

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray:
        # Raw mixture estimates; predict_many applies the [0, 1] clip.
        # (All kernels have positive volume, so coverage_dot's zero-volume
        # guard never fires and the result matches _coverage_row exactly.)
        if self._index is not None:
            return sparse_coverage_dot(
                queries, self._index, self._kernel_volumes, self._weights
            )
        return coverage_dot(
            queries, self._kernel_lows, self._kernel_highs, self._kernel_volumes, self._weights
        )

    def raw_predict(self, query: Range) -> float:
        """Unclipped estimate — may be negative or exceed 1 (by design)."""
        self._check_fitted()
        return self._predict_one(query)

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return int(self._weights.shape[0])

    def _state_dict(self) -> Dict[str, object]:
        return {
            "kernel_lows": self._kernel_lows,
            "kernel_highs": self._kernel_highs,
            "kernel_volumes": self._kernel_volumes,
            "weights": self._weights,
        }

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        self._kernel_lows = np.asarray(state["kernel_lows"], dtype=float)
        self._kernel_highs = np.asarray(state["kernel_highs"], dtype=float)
        self._kernel_volumes = np.asarray(state["kernel_volumes"], dtype=float)
        self._weights = np.asarray(state["weights"], dtype=float)
        # Rebuilt deterministically from the persisted kernel arrays; the
        # index itself is never serialised.
        self._index = build_bucket_index(self._kernel_lows, self._kernel_highs)
