"""ISOMER baseline — consistent histograms from query feedback.

Reimplementation of ISOMER [Srivastava et al., ICDE 2006], which the
paper's evaluation uses as the accuracy gold standard for orthogonal range
queries.  Two phases, matching the original design:

1. **STHoles-style bucket creation**: processing queries one by one, each
   query "drills a hole" into every bucket it intersects — the intersection
   becomes a new bucket and the remainder is decomposed into at most ``2d``
   disjoint boxes.  After processing, every bucket is entirely inside or
   entirely outside every processed query, so the feedback constraints are
   exact 0/1 sums over buckets.

2. **Maximum-entropy weights**: the bucket distribution maximising entropy
   subject to the (soft) consistency constraints
   ``Σ_{B ⊆ R_i} w_B = s_i`` — solved via the Gibbs-form dual in
   :func:`repro.solvers.maxent.fit_maxent_weights`.

Like the original (and as observed in the paper's Figure 10), the bucket
count grows much faster than the training size, which is what makes ISOMER
accurate but slow; ``max_buckets`` bounds the blow-up.
"""

from __future__ import annotations

from typing import ClassVar, Dict, Sequence

import numpy as np

from repro.core.config import IsomerConfig
from repro.core.estimator import SelectivityEstimator
from repro.core.workload import TrainingSet
from repro.distributions.histogram import HistogramDistribution
from repro.geometry.batch import coverage_dot
from repro.geometry.index import BucketIndex, build_bucket_index
from repro.geometry.sparse import sparse_coverage_dot, sparse_coverage_matrix
from repro.geometry.ranges import Box, Range, unit_box
from repro.geometry.volume import batch_intersection_volumes
from repro.solvers.maxent import fit_maxent_weights

__all__ = ["Isomer"]


class Isomer(SelectivityEstimator):
    """ISOMER: STHoles bucket drilling + maximum-entropy weighting.

    Parameters
    ----------
    max_buckets:
        Hard cap on the number of buckets; once reached, later queries stop
        drilling (their selectivity feedback still constrains the weights).
    slack:
        Softness of the max-ent consistency constraints (see
        :func:`repro.solvers.maxent.fit_maxent_weights`).
    domain:
        Data domain; defaults to the unit cube.
    """

    Config: ClassVar = IsomerConfig

    def __init__(
        self,
        max_buckets: int = 20_000,
        slack: float = 1e-3,
        domain: Box | None = None,
    ):
        super().__init__()
        if max_buckets < 1:
            raise ValueError(f"max_buckets must be >= 1, got {max_buckets}")
        self.max_buckets = int(max_buckets)
        self.slack = float(slack)
        self.domain = domain
        self._bucket_lows: np.ndarray | None = None
        self._bucket_highs: np.ndarray | None = None
        self._bucket_volumes: np.ndarray | None = None
        self._index: BucketIndex | None = None
        self._weights: np.ndarray | None = None
        self._distribution: HistogramDistribution | None = None

    def _fit(self, training: TrainingSet) -> None:
        if not all(isinstance(q, Box) for q in training.queries):
            raise TypeError("ISOMER supports orthogonal-range (Box) queries only")
        domain = self.domain if self.domain is not None else unit_box(training.dim)
        buckets = self._drill_buckets(list(training.queries), domain)
        self._bucket_lows = np.stack([b.lows for b in buckets])
        self._bucket_highs = np.stack([b.highs for b in buckets])
        self._bucket_volumes = np.prod(self._bucket_highs - self._bucket_lows, axis=1)
        self._index = build_bucket_index(self._bucket_lows, self._bucket_highs)
        design = sparse_coverage_matrix(
            training.queries, self._index, self._bucket_volumes
        )
        weights = fit_maxent_weights(design, training.selectivities, slack=self.slack)
        self._weights = weights
        self._distribution = HistogramDistribution(buckets, weights)

    def _drill_buckets(self, queries: list[Box], domain: Box) -> list[Box]:
        """STHoles-style refinement: each query splits the buckets it cuts."""
        buckets: list[Box] = [domain]
        for query in queries:
            if len(buckets) >= self.max_buckets:
                break
            next_buckets: list[Box] = []
            for bucket in buckets:
                hole = bucket.intersect(query)
                if hole is None or hole.volume() <= 0.0:
                    next_buckets.append(bucket)
                    continue
                if hole.volume() >= bucket.volume() - 1e-15:
                    next_buckets.append(bucket)  # bucket entirely inside the query
                    continue
                next_buckets.append(hole)
                next_buckets.extend(bucket.subtract(hole))
            buckets = next_buckets
        return buckets

    def _fraction_row(self, query: Range) -> np.ndarray:
        overlaps = batch_intersection_volumes(self._bucket_lows, self._bucket_highs, query)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(
                self._bucket_volumes > 0, overlaps / self._bucket_volumes, 0.0
            )
        return np.clip(fractions, 0.0, 1.0)

    def _predict_one(self, query: Range) -> float:
        return float(self._fraction_row(query) @ self._weights)

    def _predict_batch(self, queries: Sequence[Range]) -> np.ndarray:
        if self._index is not None:
            return sparse_coverage_dot(
                queries, self._index, self._bucket_volumes, self._weights
            )
        return coverage_dot(
            queries, self._bucket_lows, self._bucket_highs, self._bucket_volumes, self._weights
        )

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return int(self._weights.shape[0])

    @property
    def distribution(self) -> HistogramDistribution:
        """The learned maximum-entropy histogram."""
        self._check_fitted()
        return self._distribution

    def _state_dict(self) -> Dict[str, object]:
        state: Dict[str, object] = {
            "bucket_lows": self._bucket_lows,
            "bucket_highs": self._bucket_highs,
            "bucket_volumes": self._bucket_volumes,
            "weights": self._weights,
        }
        for key, value in self._distribution.to_state().items():
            state[f"distribution.{key}"] = value
        return state

    def _load_state_dict(self, state: Dict[str, object]) -> None:
        self._bucket_lows = np.asarray(state["bucket_lows"], dtype=float)
        self._bucket_highs = np.asarray(state["bucket_highs"], dtype=float)
        self._bucket_volumes = np.asarray(state["bucket_volumes"], dtype=float)
        self._weights = np.asarray(state["weights"], dtype=float)
        # Rebuilt deterministically from the persisted bucket arrays; the
        # index itself is never serialised.
        self._index = build_bucket_index(self._bucket_lows, self._bucket_highs)
        self._distribution = HistogramDistribution.from_state(
            {
                key.split(".", 1)[1]: value
                for key, value in state.items()
                if key.startswith("distribution.")
            }
        )
