"""Query-feature regression baseline (the paper's Table 2 third column).

The learned-cardinality literature contains a whole family of *regression*
models mapping query feature vectors to selectivities — LW [Dutt et al.,
VLDB 2019] with gradient-boosted trees being the canonical lightweight
one.  The paper excludes them from its comparison because a regression
model "may not correspond to any valid hypothesis" (no underlying data
distribution ⟹ no monotonicity/consistency guarantee).  We include one so
that exclusion is *checkable*: :mod:`repro.eval.diagnostics` measures its
violations next to the distribution-based learners' zeros.

Since this repository allows no ML-framework dependencies, the model is
built from scratch:

* :class:`RegressionTree` — CART with variance-reduction splits, computed
  exactly via prefix sums over sorted feature values,
* :class:`GradientBoostedTrees` — squared-loss boosting on residuals,
* :class:`LWRegression` — the estimator: featurises box queries as
  ``[lows, highs, widths, center, log-volume]`` and regresses
  ``log(selectivity + floor)`` (the LW paper's target transform).
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import SelectivityEstimator
from repro.core.workload import TrainingSet
from repro.geometry.ranges import Box, Range

__all__ = ["RegressionTree", "GradientBoostedTrees", "LWRegression", "featurize_box"]


# ---------------------------------------------------------------------------
# CART regression tree
# ---------------------------------------------------------------------------


class _TreeNode:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value: float):
        self.feature: int | None = None
        self.threshold = 0.0
        self.left: "_TreeNode | None" = None
        self.right: "_TreeNode | None" = None
        self.value = value


class RegressionTree:
    """Binary regression tree minimising within-leaf variance.

    Exact best-split search: for every feature, candidates are midpoints
    of consecutive sorted values; the variance reduction of every
    candidate is evaluated in one vectorised prefix-sum pass.
    """

    def __init__(self, max_depth: int = 4, min_samples_leaf: int = 3):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ValueError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self._root: _TreeNode | None = None

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        if x.ndim != 2 or y.shape != (x.shape[0],):
            raise ValueError(f"bad shapes: features {x.shape}, targets {y.shape}")
        if x.shape[0] == 0:
            raise ValueError("empty training set")
        self._root = self._grow(x, y, depth=0)
        return self

    def _grow(self, x: np.ndarray, y: np.ndarray, depth: int) -> _TreeNode:
        node = _TreeNode(float(y.mean()))
        n = y.shape[0]
        if depth >= self.max_depth or n < 2 * self.min_samples_leaf or np.ptp(y) == 0.0:
            return node
        best_gain = 0.0
        best: tuple[int, float] | None = None
        base_sse = float(np.sum((y - y.mean()) ** 2))
        for feature in range(x.shape[1]):
            order = np.argsort(x[:, feature], kind="stable")
            xs = x[order, feature]
            ys = y[order]
            # Candidate split after position i (left = ys[:i+1]).
            prefix = np.cumsum(ys)
            prefix_sq = np.cumsum(ys**2)
            total = prefix[-1]
            total_sq = prefix_sq[-1]
            sizes_left = np.arange(1, n)
            sizes_right = n - sizes_left
            sum_left = prefix[:-1]
            sum_right = total - sum_left
            sse_left = prefix_sq[:-1] - sum_left**2 / sizes_left
            sse_right = (total_sq - prefix_sq[:-1]) - sum_right**2 / sizes_right
            gains = base_sse - (sse_left + sse_right)
            # Valid splits: leaf sizes respected and distinct feature values.
            valid = (
                (sizes_left >= self.min_samples_leaf)
                & (sizes_right >= self.min_samples_leaf)
                & (np.diff(xs) > 0)
            )
            if not valid.any():
                continue
            gains = np.where(valid, gains, -np.inf)
            idx = int(np.argmax(gains))
            if gains[idx] > best_gain + 1e-12:
                best_gain = float(gains[idx])
                best = (feature, float(0.5 * (xs[idx] + xs[idx + 1])))
        if best is None:
            return node
        feature, threshold = best
        mask = x[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(x[mask], y[mask], depth + 1)
        node.right = self._grow(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        x = np.asarray(features, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        out = np.empty(x.shape[0])
        for i, row in enumerate(x):
            node = self._root
            while node.feature is not None:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out[0] if single else out


class GradientBoostedTrees:
    """Squared-loss gradient boosting over :class:`RegressionTree`s."""

    def __init__(
        self,
        n_trees: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 3,
    ):
        if n_trees < 1:
            raise ValueError(f"n_trees must be >= 1, got {n_trees}")
        if not 0.0 < learning_rate <= 1.0:
            raise ValueError(f"learning_rate must be in (0, 1], got {learning_rate}")
        self.n_trees = int(n_trees)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self._base = 0.0
        self._trees: list[RegressionTree] = []
        self.train_errors: list[float] = []

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(features, dtype=float)
        y = np.asarray(targets, dtype=float)
        self._base = float(y.mean())
        self._trees = []
        self.train_errors = []
        current = np.full_like(y, self._base)
        for _ in range(self.n_trees):
            residuals = y - current
            tree = RegressionTree(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            ).fit(x, residuals)
            current = current + self.learning_rate * tree.predict(x)
            self._trees.append(tree)
            self.train_errors.append(float(np.mean((y - current) ** 2)))
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        x = np.asarray(features, dtype=float)
        single = x.ndim == 1
        if single:
            x = x[None, :]
        out = np.full(x.shape[0], self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out[0] if single else out


# ---------------------------------------------------------------------------
# The selectivity estimator
# ---------------------------------------------------------------------------


def featurize_box(query: Box) -> np.ndarray:
    """LW-style feature vector of an orthogonal range query."""
    widths = query.widths
    log_volume = np.log(query.volume() + 1e-12)
    return np.concatenate([query.lows, query.highs, widths, query.center(), [log_volume]])


class LWRegression(SelectivityEstimator):
    """Lightweight regression estimator (query features -> selectivity).

    Regresses ``log(s + floor)`` with gradient-boosted trees, the LW
    recipe.  Being a regression model rather than a distribution, it has
    *no* monotonicity/consistency guarantee — this repository includes it
    precisely so that difference is measurable
    (:mod:`repro.eval.diagnostics`).
    """

    def __init__(
        self,
        n_trees: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        log_floor: float = 1e-5,
    ):
        super().__init__()
        if log_floor <= 0:
            raise ValueError(f"log_floor must be positive, got {log_floor}")
        self.log_floor = float(log_floor)
        self._model = GradientBoostedTrees(
            n_trees=n_trees, learning_rate=learning_rate, max_depth=max_depth
        )

    def _fit(self, training: TrainingSet) -> None:
        if not all(isinstance(q, Box) for q in training.queries):
            raise TypeError("LWRegression supports orthogonal-range (Box) queries only")
        features = np.stack([featurize_box(q) for q in training.queries])
        targets = np.log(training.selectivities + self.log_floor)
        self._model.fit(features, targets)

    def _predict_one(self, query: Range) -> float:
        if not isinstance(query, Box):
            raise TypeError("LWRegression supports orthogonal-range (Box) queries only")
        log_estimate = float(self._model.predict(featurize_box(query)))
        return float(np.exp(log_estimate) - self.log_floor)

    @property
    def model_size(self) -> int:
        self._check_fitted()
        return len(self._model._trees)
