"""Discrete (point-mass) distributions — Eq. (7) of the paper.

``D = {(B_1, w_1), ..., (B_m, w_m)}`` where the ``B_i`` are *points* in
``R^d`` and ``Σ w_i = 1``.  Selectivity of a query range R:

.. math:: s_D(R) = \\sum_i \\mathbf{1}(B_i \\in R) \\, w_i
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.batch import containment_matrix
from repro.geometry.index import BucketIndex, build_bucket_index
from repro.geometry.ranges import Range
from repro.geometry.sparse import sparse_containment_dot, sparse_containment_matrix

__all__ = ["DiscreteDistribution"]


class DiscreteDistribution:
    """A finitely supported probability distribution over ``R^d``."""

    def __init__(self, points: np.ndarray, weights: np.ndarray):
        pts = np.asarray(points, dtype=float)
        if pts.ndim != 2 or pts.shape[0] == 0:
            raise ValueError(f"points must be a non-empty (m, d) array, got shape {pts.shape}")
        weight_arr = np.asarray(weights, dtype=float)
        if weight_arr.shape != (pts.shape[0],):
            raise ValueError(
                f"weights must have shape ({pts.shape[0]},), got {weight_arr.shape}"
            )
        if np.any(weight_arr < -1e-9):
            raise ValueError("weights must be non-negative")
        weight_arr = np.maximum(weight_arr, 0.0)
        total = float(weight_arr.sum())
        if total <= 0.0:
            raise ValueError("weights must not all be zero")
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"weights must sum to 1 (got {total}); normalise first")
        self.points = pts
        self.weights = weight_arr / total
        self._index: BucketIndex | None = None

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    @property
    def size(self) -> int:
        """Model complexity: the support size."""
        return self.points.shape[0]

    def to_state(self) -> dict:
        """Serialisable state (see :mod:`repro.persistence`)."""
        return {"points": self.points.copy(), "weights": self.weights.copy()}

    @classmethod
    def from_state(cls, state: dict) -> "DiscreteDistribution":
        """Rebuild from :meth:`to_state` output, bypassing ``__init__``.

        The persisted weights are already normalised; renormalising again
        could drift by ulps and break bitwise round-tripping.
        """
        self = cls.__new__(cls)
        self.points = np.asarray(state["points"], dtype=float)
        self.weights = np.asarray(state["weights"], dtype=float)
        self._index = None
        return self

    def selectivity(self, range_: Range) -> float:
        """``s_D(R)`` per Eq. (7)."""
        inside = np.asarray(range_.contains(self.points))
        return float(np.clip(self.weights[inside].sum(), 0.0, 1.0))

    def attach_index(self) -> "DiscreteDistribution":
        """Build (or rebuild) the spatial index over the support points.

        Estimators call this once after fit/load; batch selectivity then
        routes through the sparse membership kernels.  Never serialised —
        rebuilt deterministically from the points.
        """
        self._index = build_bucket_index(self.points, self.points)
        return self

    def selectivity_many(self, ranges: Sequence[Range]) -> np.ndarray:
        """``s_D(R_i)`` for a whole workload via one batch membership matrix."""
        if self._index is not None:
            dots = sparse_containment_dot(ranges, self._index, self.weights)
            return np.clip(dots, 0.0, 1.0)
        matrix = containment_matrix(ranges, self.points)
        return np.clip(matrix @ self.weights, 0.0, 1.0)

    def membership_row(self, range_: Range) -> np.ndarray:
        """Indicator vector ``1(B_j in R)`` — one design-matrix row."""
        return np.asarray(range_.contains(self.points), dtype=float)

    def membership_matrix(self, ranges: Sequence[Range]) -> np.ndarray:
        """Indicator matrix ``1(B_j in R_i)`` — the Eq. (7) design matrix."""
        if self._index is not None:
            return sparse_containment_matrix(ranges, self._index)
        return containment_matrix(ranges, self.points)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` points (with replacement) from the support."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        idx = rng.choice(self.size, size=count, p=self.weights)
        return self.points[idx]

    def __repr__(self) -> str:
        return f"DiscreteDistribution(size={self.size}, dim={self.dim})"
