"""Piecewise-constant (histogram) distributions — Eq. (6) of the paper.

``D = {(B_1, w_1), ..., (B_m, w_m)}`` with ``Σ w_i = 1`` and uniform density
``w_i / Vol(B_i)`` inside each bucket.  Selectivity of a query range R:

.. math:: s_D(R) = \\sum_i \\frac{Vol(B_i \\cap R)}{Vol(B_i)} \\, w_i
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.batch import (
    CHUNK_ELEMENTS,
    containment_matrix,
    coverage_matrix,
)
from repro.geometry.index import BucketIndex, build_bucket_index
from repro.geometry.ranges import Box, Range
from repro.geometry.sampling import sample_in_box
from repro.geometry.sparse import sparse_coverage_dot
from repro.geometry.volume import batch_intersection_volumes

__all__ = ["HistogramDistribution"]


class HistogramDistribution:
    """A probability distribution that is uniform within each box bucket.

    Parameters
    ----------
    buckets:
        Pairwise-disjoint boxes (disjointness is the caller's contract, as
        in the paper's bucket-design procedures; it is validated only in
        ``validate()`` because the check is quadratic).
    weights:
        Non-negative weights summing to 1 (renormalised if slightly off).
    """

    def __init__(self, buckets: Sequence[Box], weights: Sequence[float]):
        if len(buckets) == 0:
            raise ValueError("a histogram needs at least one bucket")
        if len(buckets) != len(weights):
            raise ValueError(f"{len(buckets)} buckets but {len(weights)} weights")
        dims = {b.dim for b in buckets}
        if len(dims) != 1:
            raise ValueError(f"buckets must share one dimension, got {sorted(dims)}")
        weight_arr = np.asarray(weights, dtype=float)
        if np.any(weight_arr < -1e-9):
            raise ValueError("weights must be non-negative")
        weight_arr = np.maximum(weight_arr, 0.0)
        total = float(weight_arr.sum())
        if total <= 0.0:
            raise ValueError("weights must not all be zero")
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"weights must sum to 1 (got {total}); normalise first")
        self.buckets = list(buckets)
        self.weights = weight_arr / total
        self._lows = np.stack([b.lows for b in self.buckets])
        self._highs = np.stack([b.highs for b in self.buckets])
        self._volumes = np.array([b.volume() for b in self.buckets])
        degenerate = self._volumes <= 0.0
        if np.any(self.weights[degenerate] > 1e-12):
            raise ValueError("zero-volume buckets cannot carry weight in a histogram")
        self._index: BucketIndex | None = None

    @property
    def dim(self) -> int:
        return self.buckets[0].dim

    @property
    def size(self) -> int:
        """Model complexity: the number of buckets."""
        return len(self.buckets)

    def to_state(self) -> dict:
        """Serialisable state (see :mod:`repro.persistence`).

        Captures the internal arrays verbatim — including the already
        normalised weights — so :meth:`from_state` reproduces selectivity
        computations bitwise instead of renormalising a second time.
        """
        return {
            "lows": self._lows.copy(),
            "highs": self._highs.copy(),
            "volumes": self._volumes.copy(),
            "weights": self.weights.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "HistogramDistribution":
        """Rebuild a distribution from :meth:`to_state` output.

        Bypasses ``__init__`` on purpose: the constructor renormalises
        weights and recomputes volumes, which can drift by ulps from the
        persisted values.  Restored state must be byte-identical.
        """
        lows = np.asarray(state["lows"], dtype=float)
        highs = np.asarray(state["highs"], dtype=float)
        self = cls.__new__(cls)
        self.buckets = [Box(lows[i], highs[i]) for i in range(lows.shape[0])]
        self.weights = np.asarray(state["weights"], dtype=float)
        self._lows = lows
        self._highs = highs
        self._volumes = np.asarray(state["volumes"], dtype=float)
        self._index = None
        return self

    def selectivity(self, range_: Range) -> float:
        """``s_D(R)`` per Eq. (6), in one vectorised kernel call."""
        overlaps = batch_intersection_volumes(self._lows, self._highs, range_)
        active = (self.weights > 0.0) & (self._volumes > 0.0)
        total = float(
            np.sum(self.weights[active] * overlaps[active] / self._volumes[active])
        )
        return float(min(1.0, max(0.0, total)))

    def attach_index(self) -> "HistogramDistribution":
        """Build (or rebuild) the spatial index over the bucket boxes.

        Batch selectivity then routes through the sparse coverage kernels.
        Never serialised — rebuilt deterministically from the buckets.
        """
        self._index = build_bucket_index(self._lows, self._highs)
        return self

    def selectivity_many(self, ranges: Sequence[Range]) -> np.ndarray:
        """``s_D(R_i)`` for a whole workload via one coverage matrix."""
        if self._index is not None:
            dots = sparse_coverage_dot(ranges, self._index, self._volumes, self.weights)
            return np.clip(dots, 0.0, 1.0)
        fractions = coverage_matrix(ranges, self._lows, self._highs, self._volumes)
        return np.clip(fractions @ self.weights, 0.0, 1.0)

    def intersection_fractions(self, range_: Range) -> np.ndarray:
        """Per-bucket ``Vol(B_i ∩ R)/Vol(B_i)`` — one design-matrix row."""
        overlaps = batch_intersection_volumes(self._lows, self._highs, range_)
        with np.errstate(divide="ignore", invalid="ignore"):
            fractions = np.where(self._volumes > 0.0, overlaps / self._volumes, 0.0)
        return np.clip(fractions, 0.0, 1.0)

    def density(self, points: np.ndarray) -> np.ndarray:
        """Probability density at the given points (0 outside all buckets).

        Vectorised over both points and buckets.  Buckets are disjoint up to
        shared faces; on a shared face the *last* containing bucket wins,
        matching the historical scalar loop (later buckets overwrote).
        """
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        active = np.flatnonzero((self.weights > 0.0) & (self._volumes > 0.0))
        values = np.zeros(pts.shape[0])
        if active.size:
            densities = self.weights[active] / self._volumes[active]
            boxes = [self.buckets[int(i)] for i in active]
            step = max(1, CHUNK_ELEMENTS // max(1, active.size))
            for start in range(0, pts.shape[0], step):
                chunk = pts[start : start + step]
                inside = containment_matrix(boxes, chunk)  # (m_active, n_chunk)
                hit = inside.any(axis=0)
                last = inside.shape[0] - 1 - np.argmax(inside[::-1], axis=0)
                values[start : start + step] = np.where(hit, densities[last], 0.0)
        return float(values[0]) if single else values

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` points from the distribution."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        choices = rng.choice(self.size, size=count, p=self.weights)
        points = np.empty((count, self.dim))
        for idx in np.unique(choices):
            mask = choices == idx
            points[mask] = sample_in_box(self.buckets[int(idx)], int(mask.sum()), rng)
        return points

    def validate(self) -> None:
        """Check the disjointness contract via broadcast pairwise overlaps.

        Still O(m^2) work, but one chunked NumPy broadcast instead of a
        Python double loop; memory stays bounded by ``CHUNK_ELEMENTS``.
        """
        m, d = self._lows.shape
        step = max(1, CHUNK_ELEMENTS // max(1, m * d))
        for start in range(0, m, step):
            stop = min(m, start + step)
            pair_lows = np.maximum(self._lows[start:stop, None, :], self._lows[None, :, :])
            pair_highs = np.minimum(
                self._highs[start:stop, None, :], self._highs[None, :, :]
            )
            overlap = np.prod(np.maximum(pair_highs - pair_lows, 0.0), axis=2)
            # Only pairs (i, j) with j > i matter; mask the rest out.
            cols = np.arange(m)[None, :]
            rows = np.arange(start, stop)[:, None]
            overlap[cols <= rows] = 0.0
            if np.any(overlap > 1e-12):
                i, j = np.unravel_index(int(np.argmax(overlap)), overlap.shape)
                a, b = self.buckets[start + int(i)], self.buckets[int(j)]
                raise ValueError(f"buckets overlap: {a} and {b}")

    def __repr__(self) -> str:
        return f"HistogramDistribution(size={self.size}, dim={self.dim})"
