"""Piecewise-constant (histogram) distributions — Eq. (6) of the paper.

``D = {(B_1, w_1), ..., (B_m, w_m)}`` with ``Σ w_i = 1`` and uniform density
``w_i / Vol(B_i)`` inside each bucket.  Selectivity of a query range R:

.. math:: s_D(R) = \\sum_i \\frac{Vol(B_i \\cap R)}{Vol(B_i)} \\, w_i
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.ranges import Box, Range
from repro.geometry.sampling import sample_in_box
from repro.geometry.volume import intersection_volume

__all__ = ["HistogramDistribution"]


class HistogramDistribution:
    """A probability distribution that is uniform within each box bucket.

    Parameters
    ----------
    buckets:
        Pairwise-disjoint boxes (disjointness is the caller's contract, as
        in the paper's bucket-design procedures; it is validated only in
        ``validate()`` because the check is quadratic).
    weights:
        Non-negative weights summing to 1 (renormalised if slightly off).
    """

    def __init__(self, buckets: Sequence[Box], weights: Sequence[float]):
        if len(buckets) == 0:
            raise ValueError("a histogram needs at least one bucket")
        if len(buckets) != len(weights):
            raise ValueError(f"{len(buckets)} buckets but {len(weights)} weights")
        dims = {b.dim for b in buckets}
        if len(dims) != 1:
            raise ValueError(f"buckets must share one dimension, got {sorted(dims)}")
        weight_arr = np.asarray(weights, dtype=float)
        if np.any(weight_arr < -1e-9):
            raise ValueError("weights must be non-negative")
        weight_arr = np.maximum(weight_arr, 0.0)
        total = float(weight_arr.sum())
        if total <= 0.0:
            raise ValueError("weights must not all be zero")
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"weights must sum to 1 (got {total}); normalise first")
        self.buckets = list(buckets)
        self.weights = weight_arr / total
        self._volumes = np.array([b.volume() for b in self.buckets])
        degenerate = self._volumes <= 0.0
        if np.any(self.weights[degenerate] > 1e-12):
            raise ValueError("zero-volume buckets cannot carry weight in a histogram")

    @property
    def dim(self) -> int:
        return self.buckets[0].dim

    @property
    def size(self) -> int:
        """Model complexity: the number of buckets."""
        return len(self.buckets)

    def selectivity(self, range_: Range) -> float:
        """``s_D(R)`` per Eq. (6)."""
        total = 0.0
        for bucket, weight, volume in zip(self.buckets, self.weights, self._volumes):
            if weight <= 0.0 or volume <= 0.0:
                continue
            overlap = intersection_volume(bucket, range_)
            if overlap > 0.0:
                total += weight * overlap / volume
        return float(min(1.0, max(0.0, total)))

    def intersection_fractions(self, range_: Range) -> np.ndarray:
        """Per-bucket ``Vol(B_i ∩ R)/Vol(B_i)`` — one design-matrix row."""
        fractions = np.zeros(self.size)
        for i, (bucket, volume) in enumerate(zip(self.buckets, self._volumes)):
            if volume <= 0.0:
                continue
            fractions[i] = intersection_volume(bucket, range_) / volume
        return np.clip(fractions, 0.0, 1.0)

    def density(self, points: np.ndarray) -> np.ndarray:
        """Probability density at the given points (0 outside all buckets)."""
        pts = np.asarray(points, dtype=float)
        single = pts.ndim == 1
        if single:
            pts = pts[None, :]
        values = np.zeros(pts.shape[0])
        for bucket, weight, volume in zip(self.buckets, self.weights, self._volumes):
            if weight <= 0.0 or volume <= 0.0:
                continue
            inside = np.asarray(bucket.contains(pts))
            values[inside] = weight / volume  # buckets are disjoint
        return float(values[0]) if single else values

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``count`` points from the distribution."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        choices = rng.choice(self.size, size=count, p=self.weights)
        points = np.empty((count, self.dim))
        for idx in np.unique(choices):
            mask = choices == idx
            points[mask] = sample_in_box(self.buckets[int(idx)], int(mask.sum()), rng)
        return points

    def validate(self) -> None:
        """Check the disjointness contract (O(m^2); for tests/debugging)."""
        for i, a in enumerate(self.buckets):
            for b in self.buckets[i + 1 :]:
                inter = a.intersect(b)
                if inter is not None and inter.volume() > 1e-12:
                    raise ValueError(f"buckets overlap: {a} and {b}")

    def __repr__(self) -> str:
        return f"HistogramDistribution(size={self.size}, dim={self.dim})"
