"""Distribution models — the hypothesis families of Section 3.1.

The learners output a member of one of two families:

* :class:`~repro.distributions.histogram.HistogramDistribution` — a
  piecewise-constant density over disjoint box buckets (Eq. 6),
* :class:`~repro.distributions.discrete.DiscreteDistribution` — a weighted
  point set (Eq. 7).

Both expose ``selectivity(range)`` implementing the paper's
:math:`s_D(R)` and support sampling, making them genuine probability
distributions over the data domain.
"""

from repro.distributions.discrete import DiscreteDistribution
from repro.distributions.histogram import HistogramDistribution

__all__ = ["DiscreteDistribution", "HistogramDistribution"]
