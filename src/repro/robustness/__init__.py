"""Fault tolerance for the train→serve pipeline.

Theorem 2.1 promises accuracy on *clean* ``(query, selectivity)`` samples;
a deployed query-driven estimator sees everything else too — NaN feedback
from broken instrumentation, degenerate ranges from optimizer edge cases,
simplex solves that refuse to converge on adversarial design matrices.
This package contains the machinery that keeps the estimator answering
through all of it:

* :mod:`~repro.robustness.errors` — structured error taxonomy
  (:class:`ReproError` and friends) replacing bare ``ValueError`` /
  ``RuntimeError`` on failure paths.
* :mod:`~repro.robustness.sanitize` — training-set sanitization with
  ``raise`` / ``drop`` / ``clamp`` policies and a quarantine report.
* :mod:`~repro.robustness.breaker` — a circuit breaker guarding retrain
  loops (closed → open → half-open probe).
* :mod:`~repro.robustness.buffer` — a bounded feedback store (recency
  ring + reservoir-downsampled history).
* :mod:`~repro.robustness.chaos` — deterministic fault injection (solver
  failures, corrupt feedback, slow fits) for the ``tests/robustness``
  suite and the robustness benchmark.

The solver fallback ladder itself lives with the solvers
(:func:`repro.solvers.simplex_ls.fit_simplex_weights_robust`); this
package sits *below* ``repro.solvers`` in the layering so the ladder can
raise the structured errors and consult the chaos hooks without cycles.

See ``docs/robustness.md`` for the full failure-mode catalogue.
"""

from repro.robustness.breaker import CircuitBreaker
from repro.robustness.buffer import FeedbackBuffer
from repro.robustness.deadline import Deadline
from repro.robustness.chaos import ChaosConfig, ChaosMonkey, chaos
from repro.robustness.errors import (
    DataValidationError,
    DeadlineExceededError,
    ModelUnavailableError,
    OverloadedError,
    ReproError,
    SolverConvergenceError,
    TrainingTimeoutError,
    WorkerSupervisionError,
)
from repro.robustness.sanitize import (
    SANITIZE_POLICIES,
    SanitizationReport,
    sanitize_training_data,
)

__all__ = [
    "ReproError",
    "DataValidationError",
    "SolverConvergenceError",
    "TrainingTimeoutError",
    "ModelUnavailableError",
    "OverloadedError",
    "DeadlineExceededError",
    "WorkerSupervisionError",
    "SANITIZE_POLICIES",
    "SanitizationReport",
    "sanitize_training_data",
    "CircuitBreaker",
    "Deadline",
    "FeedbackBuffer",
    "ChaosConfig",
    "ChaosMonkey",
    "chaos",
]
