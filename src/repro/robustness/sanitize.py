"""Training-set sanitization: raise / drop / clamp policies + quarantine.

The agnostic learning model (Section 2.1) tolerates *noisy* labels, but a
deployed feedback loop also produces *malformed* samples the theory says
nothing about: NaN selectivities, labels outside ``[0, 1]``, zero-volume
or inverted ranges, and the same query reported twice with contradictory
labels.  :func:`sanitize_training_data` screens a workload for all of
these and applies one of three policies:

``"raise"``
    Reject the whole workload with :class:`DataValidationError` on the
    first anomaly (strict mode — what you want in offline experiments,
    where dirty data means a bug upstream).
``"drop"``
    Quarantine every offending sample and fit on the rest.  The default
    for the serving path: one bad feedback pair must not take retraining
    offline.
``"clamp"``
    Repair what is repairable (clip finite out-of-range labels into
    ``[0, 1]``, replace a conflicting duplicate group by one median-label
    representative) and quarantine only the unrepairable (NaN labels,
    degenerate ranges, non-range objects).

Every call returns a :class:`SanitizationReport` with the exact quarantine
count and a per-reason breakdown, so callers can surface the numbers
(``/status`` does) instead of silently training on less data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.geometry.ranges import Ball, Box, Halfspace, Range
from repro.robustness.errors import DataValidationError

__all__ = ["SANITIZE_POLICIES", "SanitizationReport", "sanitize_training_data"]

SANITIZE_POLICIES = ("raise", "drop", "clamp")

#: Labels may exceed [0, 1] by this much and still count as float noise
#: (clipped silently under every policy, matching TrainingSet's historical
#: tolerance).
_LABEL_SLACK = 1e-12


@dataclass
class SanitizationReport:
    """Outcome of one sanitization pass."""

    policy: str
    total: int = 0
    kept: int = 0
    quarantined: int = 0
    clamped: int = 0
    reasons: dict[str, int] = field(default_factory=dict)

    def count(self, reason: str) -> None:
        self.quarantined += 1
        self.reasons[reason] = self.reasons.get(reason, 0) + 1

    def to_dict(self) -> dict:
        """JSON-ready rendering (surfaced by the server's ``/status``)."""
        return {
            "policy": self.policy,
            "total": self.total,
            "kept": self.kept,
            "quarantined": self.quarantined,
            "clamped": self.clamped,
            "reasons": dict(self.reasons),
        }

    def merge(self, other: "SanitizationReport") -> None:
        """Accumulate another pass into this one (for running totals)."""
        self.total += other.total
        self.kept += other.kept
        self.quarantined += other.quarantined
        self.clamped += other.clamped
        for reason, n in other.reasons.items():
            self.reasons[reason] = self.reasons.get(reason, 0) + n


def _range_key(query: Range) -> tuple | None:
    """Hashable identity for duplicate detection; None when unsupported."""
    if isinstance(query, Box):
        return ("box", query.lows.round(12).tobytes(), query.highs.round(12).tobytes())
    if isinstance(query, Halfspace):
        return ("halfspace", query.normal.round(12).tobytes(), round(query.offset, 12))
    if isinstance(query, Ball):
        return ("ball", query.ball_center.round(12).tobytes(), round(query.radius, 12))
    return None


def _degenerate_reason(query: Range) -> str | None:
    """Why ``query`` carries no usable density information, or None."""
    if isinstance(query, Box):
        if np.any(query.highs - query.lows <= 0.0):
            return "degenerate_range"
        return None
    if isinstance(query, Ball):
        return "degenerate_range" if query.radius <= 0.0 else None
    # Halfspaces and general ranges are unbounded / opaque; treat a
    # zero-volume *clipped* bounding box as degenerate.
    try:
        bbox = query.bounding_box()
    except Exception:
        return "invalid_range"
    return "degenerate_range" if bbox.volume() <= 0.0 else None


def sanitize_training_data(
    queries: Sequence,
    selectivities: Sequence[float],
    policy: str = "raise",
    duplicate_tolerance: float = 0.05,
) -> tuple[list[Range], np.ndarray, SanitizationReport]:
    """Screen a labeled workload; returns ``(queries, labels, report)``.

    Parameters
    ----------
    queries, selectivities:
        The raw workload (parallel sequences).
    policy:
        ``"raise"`` / ``"drop"`` / ``"clamp"`` — see the module docstring.
    duplicate_tolerance:
        Two labels for an *identical* range conflict when they differ by
        more than this (absolute).  Agreeing duplicates are kept: repeated
        consistent feedback is legitimate sample weight.

    Raises
    ------
    DataValidationError
        Under ``"raise"`` on the first anomaly; under any policy when the
        input is structurally unusable (length mismatch, or every sample
        quarantined).
    """
    if policy not in SANITIZE_POLICIES:
        raise ValueError(f"unknown policy {policy!r}; choose from {SANITIZE_POLICIES}")
    if len(queries) != len(selectivities):
        raise DataValidationError(
            f"{len(queries)} queries but {len(selectivities)} selectivities"
        )
    report = SanitizationReport(policy=policy, total=len(queries))

    def reject(index: int, reason: str, detail: str) -> None:
        if policy == "raise":
            raise DataValidationError(f"sample {index}: {detail}")
        report.count(reason)

    labels = [float(s) if isinstance(s, (int, float, np.floating, np.integer)) else np.nan
              for s in selectivities]

    kept_queries: list[Range] = []
    kept_labels: list[float] = []
    kept_keys: list[tuple | None] = []
    for i, (query, label) in enumerate(zip(queries, labels)):
        if not isinstance(query, Range):
            reject(i, "not_a_range", f"query must be a Range, got {type(query).__name__}")
            continue
        if not np.isfinite(label):
            reject(i, "nan_label", f"selectivity must be finite, got {label}")
            continue
        if label < -_LABEL_SLACK or label > 1.0 + _LABEL_SLACK:
            if policy == "clamp":
                report.clamped += 1
                label = min(max(label, 0.0), 1.0)
            else:
                reject(i, "out_of_range_label", f"selectivity must be in [0, 1], got {label}")
                continue
        degenerate = _degenerate_reason(query)
        if degenerate is not None:
            reject(i, degenerate, f"query has no interior (zero-volume or inverted): {query!r}")
            continue
        kept_queries.append(query)
        kept_labels.append(min(max(label, 0.0), 1.0))
        kept_keys.append(_range_key(query))

    # -- conflicting duplicate labels -----------------------------------
    groups: dict[tuple, list[int]] = {}
    for j, key in enumerate(kept_keys):
        if key is not None:
            groups.setdefault(key, []).append(j)
    discard: set[int] = set()
    for key, members in groups.items():
        if len(members) < 2:
            continue
        member_labels = [kept_labels[j] for j in members]
        if max(member_labels) - min(member_labels) <= duplicate_tolerance:
            continue
        if policy == "raise":
            raise DataValidationError(
                f"conflicting duplicate labels for identical query: {member_labels}"
            )
        if policy == "drop":
            for j in members:
                discard.add(j)
                report.count("conflicting_duplicate")
        else:  # clamp: keep one representative carrying the median label
            survivor = members[0]
            kept_labels[survivor] = float(np.median(member_labels))
            report.clamped += 1
            for j in members[1:]:
                discard.add(j)
                report.count("conflicting_duplicate")
    if discard:
        kept_queries = [q for j, q in enumerate(kept_queries) if j not in discard]
        kept_labels = [s for j, s in enumerate(kept_labels) if j not in discard]

    report.kept = len(kept_queries)
    if report.total > 0 and report.kept == 0:
        error = DataValidationError(
            f"all {report.total} samples quarantined "
            f"(reasons: {report.reasons}); nothing left to fit"
        )
        error.report = report  # callers surface the quarantine breakdown
        raise error
    return kept_queries, np.asarray(kept_labels, dtype=float), report
