"""Bounded feedback store: recency ring + reservoir-downsampled history.

An unbounded feedback list is a slow memory leak in a service that runs
for months.  Capping it naively (keep the newest N) forgets the old
workload entirely and invites catastrophic drift on retrain; keeping a
pure uniform sample loses recency, which the drift detector needs.

:class:`FeedbackBuffer` splits its capacity: the newest samples live in a
strict FIFO ring (full fidelity over the recent window), and everything
that ages out of the ring feeds a classic Algorithm-R reservoir — a
uniform sample over the *entire* evicted history.  Total memory is
bounded by ``capacity`` while retraining still sees both the current
workload and an unbiased summary of the past.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np

__all__ = ["FeedbackBuffer"]


class FeedbackBuffer:
    """Bounded store of ``(query, selectivity)`` feedback pairs.

    Parameters
    ----------
    capacity:
        Maximum number of retained pairs; ``None`` = unbounded (the
        pre-robustness behaviour).
    recent_fraction:
        Share of the capacity dedicated to the exact recency ring; the
        rest is the history reservoir.
    seed:
        Seed for the reservoir's replacement draws (deterministic
        downsampling).
    """

    def __init__(
        self,
        capacity: int | None = None,
        recent_fraction: float = 0.5,
        seed: int = 0,
    ):
        if capacity is not None and capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity}")
        if not 0.0 < recent_fraction <= 1.0:
            raise ValueError(f"recent_fraction must be in (0, 1], got {recent_fraction}")
        self.capacity = capacity
        if capacity is None:
            self._ring: deque = deque()
            self._reservoir_cap = 0
        else:
            ring_cap = max(1, int(round(capacity * recent_fraction)))
            self._reservoir_cap = capacity - ring_cap
            self._ring = deque(maxlen=ring_cap)
        self._reservoir: list[tuple] = []
        self._evicted_seen = 0  # evictions fed to the reservoir (Algorithm R's n)
        self._dropped = 0  # evictions the reservoir declined to keep
        self._total = 0
        self._rng = np.random.default_rng(seed)

    def append(self, query, selectivity: float) -> None:
        item = (query, float(selectivity))
        self._total += 1
        if self.capacity is None:
            self._ring.append(item)
            return
        evicted = self._ring[0] if len(self._ring) == self._ring.maxlen else None
        self._ring.append(item)
        if evicted is not None:
            self._absorb(evicted)

    def _absorb(self, item: tuple) -> None:
        """Algorithm R over the stream of ring evictions."""
        self._evicted_seen += 1
        if self._reservoir_cap == 0:
            self._dropped += 1
            return
        if len(self._reservoir) < self._reservoir_cap:
            self._reservoir.append(item)
            return
        slot = int(self._rng.integers(0, self._evicted_seen))
        if slot < self._reservoir_cap:
            self._dropped += 1  # a previously retained item is replaced
            self._reservoir[slot] = item
        else:
            self._dropped += 1

    def snapshot(self) -> tuple[list, np.ndarray]:
        """Current contents as ``(queries, labels)`` — history first, then
        the recency ring in arrival order."""
        items = list(self._reservoir) + list(self._ring)
        queries = [q for q, _ in items]
        labels = np.asarray([s for _, s in items], dtype=float)
        return queries, labels

    def recent(self, n: int) -> tuple[list, np.ndarray] | None:
        """The newest ``n`` pairs in arrival order, or None when the ring
        no longer holds all of them (they aged into the downsampled
        reservoir, so the exact batch cannot be reconstructed)."""
        if n <= 0:
            return [], np.zeros(0)
        if n > len(self._ring):
            return None
        items = list(self._ring)[-n:]
        queries = [q for q, _ in items]
        labels = np.asarray([s for _, s in items], dtype=float)
        return queries, labels

    def extend(self, pairs: Iterable[tuple]) -> None:
        for query, selectivity in pairs:
            self.append(query, selectivity)

    def __len__(self) -> int:
        return len(self._reservoir) + len(self._ring)

    @property
    def total_seen(self) -> int:
        """Pairs ever appended (retained or not)."""
        return self._total

    @property
    def dropped(self) -> int:
        """Pairs evicted from the ring and not (or no longer) retained."""
        return self._dropped

    @property
    def downsampled(self) -> bool:
        return self._dropped > 0

    def to_dict(self) -> dict:
        """JSON-ready rendering for ``/status``."""
        return {
            "size": len(self),
            "capacity": self.capacity,
            "total_seen": self._total,
            "dropped": self._dropped,
            "downsampled": self.downsampled,
        }
