"""Deterministic fault injection for robustness testing.

A robustness layer nobody can exercise is a robustness layer nobody can
trust.  This module injects the three failure families the pipeline must
survive, all seedable so every test run replays identically:

* **solver failures** — the fallback ladder in
  :func:`repro.solvers.simplex_ls.fit_simplex_weights_robust` consults
  the active monkey before each rung and raises
  :class:`SolverConvergenceError` when told to, forcing descent down the
  ladder (the final ``uniform`` rung is exempt — it is the guarantee).
* **fit failures / slow fits** — :class:`repro.server.EstimatorService`
  consults the monkey inside its retrain path, so breaker trips and
  training timeouts can be provoked on demand.
* **corrupt feedback** — :meth:`ChaosMonkey.corrupt_workload` rewrites a
  seeded fraction of a clean workload into NaN labels, out-of-range
  labels, and degenerate ranges, for exercising the sanitization
  policies end to end.

Usage::

    from repro.robustness import ChaosConfig, chaos

    with chaos(ChaosConfig(solver_fail_rungs=("penalty", "pgd"))):
        model.fit(queries, labels)          # lands on the lstsq rung
    assert model.solve_report_.rung == "lstsq-project"

Production code never imports anything *from* here except the two hook
checks, which are no-ops when no monkey is installed.
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field

import numpy as np

__all__ = ["ChaosConfig", "ChaosMonkey", "chaos", "install", "uninstall", "active"]


@dataclass
class ChaosConfig:
    """What to break, and how often."""

    #: Rungs of the solver ladder that always fail (e.g. ``("penalty",)``).
    solver_fail_rungs: tuple[str, ...] = ()
    #: Probability that any interceptable rung attempt fails.
    solver_failure_rate: float = 0.0
    #: Fail the next N service-level fits unconditionally, then recover.
    fit_fail_next: int = 0
    #: Probability that any service-level fit fails.
    fit_failure_rate: float = 0.0
    #: Wall-clock delay injected into every service-level fit (seconds).
    fit_delay_seconds: float = 0.0
    #: Fraction of a workload rewritten by :meth:`ChaosMonkey.corrupt_workload`.
    feedback_corruption_rate: float = 0.0
    #: Corruption kinds cycled through: ``nan`` / ``out_of_range`` / ``degenerate``.
    corruption_kinds: tuple[str, ...] = ("nan", "out_of_range", "degenerate")
    #: Seed for every random draw this monkey makes.
    seed: int = 0

    def __post_init__(self):
        for rate in (self.solver_failure_rate, self.fit_failure_rate,
                     self.feedback_corruption_rate):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rates must be in [0, 1], got {rate}")
        unknown = set(self.corruption_kinds) - {"nan", "out_of_range", "degenerate"}
        if unknown:
            raise ValueError(f"unknown corruption kinds {sorted(unknown)}")


@dataclass
class ChaosMonkey:
    """Seeded executor of a :class:`ChaosConfig`; tracks what it injected."""

    config: ChaosConfig = field(default_factory=ChaosConfig)

    def __post_init__(self):
        self._rng = np.random.default_rng(self.config.seed)
        self._fit_failures_remaining = int(self.config.fit_fail_next)
        self.injected: dict[str, int] = {"solver": 0, "fit": 0, "delay": 0, "corrupt": 0}

    # -- hooks consulted by production code ------------------------------

    def should_fail_solver(self, rung: str) -> bool:
        hit = rung in self.config.solver_fail_rungs or (
            self.config.solver_failure_rate > 0.0
            and self._rng.random() < self.config.solver_failure_rate
        )
        if hit:
            self.injected["solver"] += 1
        return hit

    def should_fail_fit(self) -> bool:
        if self._fit_failures_remaining > 0:
            self._fit_failures_remaining -= 1
            self.injected["fit"] += 1
            return True
        if self.config.fit_failure_rate > 0.0 and self._rng.random() < self.config.fit_failure_rate:
            self.injected["fit"] += 1
            return True
        return False

    def delay_fit(self) -> None:
        if self.config.fit_delay_seconds > 0.0:
            self.injected["delay"] += 1
            time.sleep(self.config.fit_delay_seconds)

    # -- workload corruption (used directly by tests / benchmarks) -------

    def corrupt_workload(self, queries, selectivities):
        """Return ``(queries, labels, corrupted_indices)`` with a seeded
        fraction of the pairs rewritten into dirty samples."""
        from repro.geometry.ranges import Box  # local: keep module import-light

        queries = list(queries)
        labels = [float(s) for s in selectivities]
        n = len(queries)
        count = int(round(self.config.feedback_corruption_rate * n))
        if count == 0:
            return queries, np.asarray(labels), []
        indices = self._rng.choice(n, size=count, replace=False)
        kinds = self.config.corruption_kinds
        for rank, i in enumerate(sorted(int(j) for j in indices)):
            kind = kinds[rank % len(kinds)]
            if kind == "nan":
                labels[i] = float("nan")
            elif kind == "out_of_range":
                labels[i] = float(self._rng.uniform(1.5, 25.0))
            else:  # degenerate: collapse the range to a zero-volume box
                dim = queries[i].dim
                anchor = self._rng.random(dim)
                queries[i] = Box(anchor, anchor)
            self.injected["corrupt"] += 1
        return queries, np.asarray(labels), [int(j) for j in sorted(indices)]


# ---------------------------------------------------------------------------
# Module-level hook registry
# ---------------------------------------------------------------------------

_lock = threading.Lock()
_active: ChaosMonkey | None = None


def install(monkey: ChaosMonkey) -> ChaosMonkey:
    """Install ``monkey`` as the process-wide fault injector."""
    global _active
    with _lock:
        _active = monkey
    return monkey


def uninstall() -> None:
    global _active
    with _lock:
        _active = None


def active() -> ChaosMonkey | None:
    """The currently installed monkey, or None (the production default)."""
    return _active


@contextlib.contextmanager
def chaos(config_or_monkey: ChaosConfig | ChaosMonkey):
    """Context manager installing a monkey for the block's duration."""
    monkey = (
        config_or_monkey
        if isinstance(config_or_monkey, ChaosMonkey)
        else ChaosMonkey(config_or_monkey)
    )
    previous = active()
    install(monkey)
    try:
        yield monkey
    finally:
        if previous is None:
            uninstall()
        else:
            install(previous)
