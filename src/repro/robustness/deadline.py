"""Request deadline budgets.

A deadline is the one robustness primitive every serving layer shares:
the HTTP adapter stamps one on each request (``X-Deadline-Ms`` header or
the server-wide default), the admission controller refuses to queue past
it, and the coalescer caps its flush wait by it.  Work that cannot finish
inside the budget fails *fast* with
:class:`~repro.robustness.errors.DeadlineExceededError` (HTTP 504)
instead of making the caller — a query optimizer holding up a plan —
discover the timeout itself.

The clock is injectable so tests can expire deadlines without sleeping.
"""

from __future__ import annotations

import math
import time
from typing import Callable

from repro.robustness.errors import DataValidationError, DeadlineExceededError

__all__ = ["Deadline"]


class Deadline:
    """A monotonic-clock expiry point; ``None`` budget = unlimited.

    Immutable once constructed; cheap enough to make one per request.
    """

    __slots__ = ("_expires_at", "_clock")

    def __init__(
        self,
        budget_seconds: float | None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if budget_seconds is not None:
            budget_seconds = float(budget_seconds)
            if not math.isfinite(budget_seconds) or budget_seconds < 0:
                raise DataValidationError(
                    f"deadline budget must be a finite non-negative number "
                    f"of seconds, got {budget_seconds}"
                )
        self._clock = clock
        self._expires_at = (
            None if budget_seconds is None else clock() + budget_seconds
        )

    @classmethod
    def after_ms(
        cls, budget_ms: float | None, clock: Callable[[], float] = time.monotonic
    ) -> "Deadline":
        return cls(None if budget_ms is None else float(budget_ms) / 1000.0, clock)

    @property
    def unlimited(self) -> bool:
        return self._expires_at is None

    def remaining(self) -> float | None:
        """Seconds left (may be negative once expired); None = unlimited."""
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0.0

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceededError` if the budget is spent."""
        remaining = self.remaining()
        if remaining is not None and remaining <= 0.0:
            raise DeadlineExceededError(
                f"{what} deadline exceeded by {-remaining:.3f}s"
            )

    def wait_budget(self, cap: float) -> float:
        """How long a wait may block: ``cap`` clipped to the remaining
        budget (never negative)."""
        remaining = self.remaining()
        if remaining is None:
            return cap
        return max(0.0, min(cap, remaining))

    def __repr__(self) -> str:
        if self._expires_at is None:
            return "Deadline(unlimited)"
        return f"Deadline(remaining={self.remaining():.3f}s)"
