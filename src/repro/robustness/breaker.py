"""Circuit breaker for the retrain loop.

The standard three-state pattern, specialised for "should we attempt a
(re)train right now?":

* **closed** — everything allowed; consecutive failures are counted.
* **open** — tripped after ``failure_threshold`` consecutive failures;
  all attempts are refused until ``cooldown_seconds`` have elapsed.
* **half-open** — after the cooldown, exactly *one* probe attempt is
  allowed; its success closes the breaker, its failure re-opens it (and
  restarts the cooldown).

The clock is injectable so tests can drive state transitions without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable

__all__ = ["CircuitBreaker"]

_STATES = ("closed", "open", "half_open")


class CircuitBreaker:
    """Trip after ``failure_threshold`` consecutive failures; probe after
    ``cooldown_seconds``.

    Not thread-safe by itself — callers (``EstimatorService``) serialize
    access under their own lock.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(f"failure_threshold must be >= 1, got {failure_threshold}")
        if cooldown_seconds < 0:
            raise ValueError(f"cooldown_seconds must be >= 0, got {cooldown_seconds}")
        self.failure_threshold = int(failure_threshold)
        self.cooldown_seconds = float(cooldown_seconds)
        self._clock = clock
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False

    # -- queries ---------------------------------------------------------

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._consecutive_failures

    def cooldown_remaining(self) -> float:
        """Seconds until an open breaker will allow a probe (0 otherwise)."""
        if self._state != "open" or self._opened_at is None:
            return 0.0
        return max(0.0, self.cooldown_seconds - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """May an attempt start now?  Claims the probe slot in half-open."""
        self._maybe_half_open()
        if self._state == "closed":
            return True
        if self._state == "half_open" and not self._probe_in_flight:
            self._probe_in_flight = True
            return True
        return False

    # -- transitions -----------------------------------------------------

    def record_success(self) -> None:
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = None
        self._probe_in_flight = False

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        self._probe_in_flight = False
        if self._state == "half_open" or self._consecutive_failures >= self.failure_threshold:
            self._state = "open"
            self._opened_at = self._clock()

    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._state = "half_open"
            self._probe_in_flight = False

    def to_dict(self) -> dict:
        """JSON-ready rendering for ``/status``."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "failure_threshold": self.failure_threshold,
            "cooldown_remaining": round(self.cooldown_remaining(), 3),
        }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
