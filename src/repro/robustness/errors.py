"""Structured error taxonomy for failure paths.

Every failure a caller may want to *handle* (rather than just observe in a
traceback) gets a class here.  The hierarchy doubles as an HTTP status map
for :mod:`repro.server`:

=============================  ======================================  ====
class                          meaning                                 HTTP
=============================  ======================================  ====
:class:`DataValidationError`   input rejected by sanitization          400
:class:`ModelUnavailableError` no model generation exists to serve,    409
                               or the retrain circuit breaker is open
:class:`TrainingTimeoutError`  a (re)train exceeded its deadline       503
:class:`SolverConvergenceError` a solve produced no valid simplex      500
                               vector (individual rung failure; the
                               fallback ladder usually absorbs these)
=============================  ======================================  ====

Each class also subclasses the builtin exception it historically replaced
(``ValueError`` / ``RuntimeError`` / ``TimeoutError``), so pre-existing
``except ValueError`` call sites keep working while new code can catch the
whole family with ``except ReproError``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataValidationError",
    "SolverConvergenceError",
    "TrainingTimeoutError",
    "ModelUnavailableError",
    "PersistenceError",
    "ArtifactError",
    "OverloadedError",
    "DeadlineExceededError",
    "WorkerSupervisionError",
]


class ReproError(Exception):
    """Base class for all structured errors raised by this library."""

    #: Default HTTP status used by the server adapter.
    http_status: int = 500

    def to_dict(self) -> dict:
        """JSON-ready rendering (used by the HTTP error responses)."""
        return {"error": str(self), "type": type(self).__name__}


class DataValidationError(ReproError, ValueError):
    """A training pair, workload, or request failed validation."""

    http_status = 400


class SolverConvergenceError(ReproError, RuntimeError):
    """A weight solve returned no valid probability vector.

    Raised per *rung* inside the fallback ladder; escaping to user code
    means every non-trivial rung failed validation (the ladder's final
    ``uniform`` rung still returns a usable vector, so callers of
    :func:`~repro.solvers.simplex_ls.fit_simplex_weights_robust` never see
    this — only callers of the raw single-method solvers do).
    """

    http_status = 500


class TrainingTimeoutError(ReproError, TimeoutError):
    """A (re)training run exceeded its wall-clock deadline."""

    http_status = 503


class ModelUnavailableError(ReproError, RuntimeError):
    """No model generation is available to answer, or retraining is
    suspended by an open circuit breaker."""

    http_status = 409


class PersistenceError(ReproError):
    """A model save/restore operation failed (no snapshot to restore,
    snapshot directory unusable, ...)."""

    http_status = 409


class ArtifactError(PersistenceError, ValueError):
    """A model artifact is unreadable: corrupted payload, checksum
    mismatch, truncated file, or an unsupported format version."""

    http_status = 400


class OverloadedError(ReproError, RuntimeError):
    """The admission queue is full; the request was shed, not queued.

    Carries an advisory ``retry_after`` (seconds) rendered as a
    ``Retry-After`` response header by the HTTP adapter, so well-behaved
    clients back off instead of hammering an overloaded worker.
    """

    http_status = 429

    def __init__(self, message: str, retry_after: float | None = None):
        super().__init__(message)
        self.retry_after = retry_after

    @property
    def http_headers(self) -> dict:
        if self.retry_after is None:
            return {}
        # Retry-After is delta-seconds (integral); always advise >= 1s.
        return {"Retry-After": str(max(1, int(round(self.retry_after))))}


class DeadlineExceededError(ReproError, TimeoutError):
    """A request's deadline budget expired before an answer was ready
    (while queued for admission, waiting on a coalesced flush, or before
    the handler could even start)."""

    http_status = 504


class WorkerSupervisionError(ReproError, RuntimeError):
    """The worker pool cannot satisfy a lifecycle operation (starting an
    already-started supervisor, restart storm exhausted, ...)."""

    http_status = 500
