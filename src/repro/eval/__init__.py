"""Evaluation: error metrics, the experiment harness, and text reporting.

These drive both the test-suite integration checks and every benchmark in
``benchmarks/`` (one per table/figure of the paper; see DESIGN.md §3).
"""

from repro.eval.metrics import linf_error, q_error_quantiles, q_errors, rms_error
from repro.eval.harness import (
    ExperimentResult,
    evaluate_estimator,
    make_workload,
    train_test_workload,
)
from repro.eval.reporting import format_series, format_table
from repro.eval.analysis import (
    DEFAULT_STRATA,
    StratumReport,
    stratified_error_report,
)
from repro.eval.drift import DriftDetector
from repro.eval.learning_curve import empirical_sample_complexity, learning_curve
from repro.eval.diagnostics import (
    consistency_violations,
    monotonicity_violations,
    nested_box_chain,
)

__all__ = [
    "rms_error",
    "linf_error",
    "q_errors",
    "q_error_quantiles",
    "ExperimentResult",
    "evaluate_estimator",
    "make_workload",
    "train_test_workload",
    "format_table",
    "format_series",
    "monotonicity_violations",
    "consistency_violations",
    "nested_box_chain",
    "StratumReport",
    "stratified_error_report",
    "DEFAULT_STRATA",
    "DriftDetector",
    "learning_curve",
    "empirical_sample_complexity",
]
