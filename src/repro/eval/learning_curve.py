"""Learning curves and empirical sample complexity.

Theorem 2.1 answers "how many training queries buy accuracy ε?" in the
worst case; this module answers it *empirically* for a concrete dataset
and workload:

* :func:`learning_curve` — test error at each training size in a sweep
  (averaged over seeds), the data behind every Figure-11-style plot;
* :func:`empirical_sample_complexity` — the smallest training size whose
  measured error meets a target, found by doubling search; the practical
  counterpart of the theorem's ``n0(ε, δ)``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.data.workloads import WorkloadSpec
from repro.eval.harness import make_workload
from repro.eval.metrics import rms_error

__all__ = ["learning_curve", "empirical_sample_complexity"]


def learning_curve(
    estimator_factory: Callable[[int], object],
    dataset: Dataset,
    rng: np.random.Generator,
    train_sizes: Sequence[int] = (25, 50, 100, 200, 400),
    test_size: int = 150,
    spec: WorkloadSpec | None = None,
    repeats: int = 1,
) -> list[dict]:
    """Mean test RMS per training size.

    Parameters
    ----------
    estimator_factory:
        ``factory(train_size) -> estimator`` (size-dependent so model
        complexity can follow the paper's 4x convention).
    repeats:
        Independent train-workload draws averaged per point.

    Returns
    -------
    ``[{"train": n, "rms": mean, "rms_std": std}, ...]`` sorted by size.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if not train_sizes:
        raise ValueError("train_sizes must be non-empty")
    test = make_workload(dataset, test_size, rng, spec=spec)
    curve = []
    for n in sorted(train_sizes):
        errors = []
        for _ in range(repeats):
            train = make_workload(dataset, n, rng, spec=spec)
            model = estimator_factory(n)
            model.fit(train.queries, train.selectivities)
            errors.append(
                rms_error(model.predict_many(test.queries), test.selectivities)
            )
        curve.append(
            {
                "train": int(n),
                "rms": float(np.mean(errors)),
                "rms_std": float(np.std(errors)),
            }
        )
    return curve


def empirical_sample_complexity(
    estimator_factory: Callable[[int], object],
    dataset: Dataset,
    rng: np.random.Generator,
    target_rms: float,
    spec: WorkloadSpec | None = None,
    test_size: int = 150,
    start: int = 25,
    max_size: int = 3200,
) -> int | None:
    """Smallest training size (by doubling search) meeting ``target_rms``.

    Returns ``None`` if the target is not met by ``max_size`` — the
    empirical analogue of "ε not yet reachable at this budget".
    The returned size is a doubling-grid value, so it over-estimates the
    true threshold by at most 2x.
    """
    if not 0.0 < target_rms < 1.0:
        raise ValueError(f"target_rms must be in (0, 1), got {target_rms}")
    if start < 1 or max_size < start:
        raise ValueError(f"bad search range [{start}, {max_size}]")
    test = make_workload(dataset, test_size, rng, spec=spec)
    n = start
    while n <= max_size:
        train = make_workload(dataset, n, rng, spec=spec)
        model = estimator_factory(n)
        model.fit(train.queries, train.selectivities)
        rms = rms_error(model.predict_many(test.queries), test.selectivities)
        if rms <= target_rms:
            return n
        n *= 2
    return None
