"""Model-validity diagnostics: monotonicity and consistency.

The paper motivates distribution-based learners by citing the benchmark
study [46]: learned estimators that do not correspond to any valid data
distribution can return estimates that are not *monotone* (a subquery
estimated more selective than its superquery) or not *consistent* (the
estimate of a union of disjoint ranges differing from the sum of parts).

Our learners (QuadHist, PtsHist, ArrangementERM, GaussianMixtureHist)
represent genuine distributions, so they are monotone and consistent *by
construction* — whereas QuickSel's signed mixture weights can violate
both.  This module measures the violations, so the claim is checkable:

* :func:`monotonicity_violations` — nested box chains ``R_1 ⊆ ... ⊆ R_k``;
  a violation is ``ŝ(R_i) > ŝ(R_{i+1}) + tol``.
* :func:`consistency_violations` — random boxes split into two disjoint
  halves; a violation is ``|ŝ(R) - ŝ(R_left) - ŝ(R_right)| > tol``.

Note that clipping predictions into [0, 1] (which every estimator's public
``predict`` does) preserves monotonicity but can itself introduce small
consistency gaps; the tolerance parameter absorbs those.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import SelectivityEstimator
from repro.geometry.ranges import Box, unit_box

__all__ = ["monotonicity_violations", "consistency_violations", "nested_box_chain"]


def nested_box_chain(
    rng: np.random.Generator, dim: int, length: int, domain: Box | None = None
) -> list[Box]:
    """A random chain ``R_1 ⊆ R_2 ⊆ ... ⊆ R_length`` of boxes."""
    if length < 2:
        raise ValueError(f"length must be >= 2, got {length}")
    if domain is None:
        domain = unit_box(dim)
    center = domain.lows + rng.random(dim) * domain.widths
    base_widths = rng.random(dim) * 0.2 + 0.05
    chain = []
    for step in range(length):
        scale = 1.0 + step * (3.0 / length)
        chain.append(Box.from_center(center, base_widths * scale, clip_to=domain))
    return chain


def monotonicity_violations(
    estimator: SelectivityEstimator,
    rng: np.random.Generator,
    dim: int,
    chains: int = 50,
    chain_length: int = 5,
    tol: float = 1e-9,
) -> float:
    """Fraction of nested-pair comparisons violating monotonicity.

    Returns a value in [0, 1]: 0 means the estimator never decreased its
    estimate when the query grew.
    """
    violations = 0
    comparisons = 0
    for _ in range(chains):
        chain = nested_box_chain(rng, dim, chain_length)
        estimates = [estimator.predict(box) for box in chain]
        for smaller, larger in zip(estimates, estimates[1:]):
            comparisons += 1
            if smaller > larger + tol:
                violations += 1
    return violations / comparisons if comparisons else 0.0


def consistency_violations(
    estimator: SelectivityEstimator,
    rng: np.random.Generator,
    dim: int,
    trials: int = 100,
    tol: float = 1e-6,
) -> float:
    """Fraction of disjoint splits where ``ŝ(R) != ŝ(R_l) + ŝ(R_r)``.

    Each trial draws a random box, splits it along a random axis, and
    compares the whole-box estimate against the sum of the halves.
    Clipping at the [0, 1] boundary can introduce spurious gaps, so trials
    whose raw estimates would clip are judged with the tolerance only.
    """
    violations = 0
    for _ in range(trials):
        box = Box.from_center(rng.random(dim), rng.random(dim) * 0.5 + 0.1, clip_to=unit_box(dim))
        if box.volume() <= 0:
            continue
        axis = int(rng.integers(dim))
        cut = box.lows[axis] + rng.random() * (box.highs[axis] - box.lows[axis])
        left_highs = box.highs.copy()
        left_highs[axis] = cut
        right_lows = box.lows.copy()
        right_lows[axis] = cut
        left = Box(box.lows, left_highs)
        right = Box(right_lows, box.highs)
        whole = estimator.predict(box)
        parts = estimator.predict(left) + estimator.predict(right)
        if abs(whole - parts) > tol:
            violations += 1
    return violations / trials
