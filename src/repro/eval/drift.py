"""Workload-drift detection for deployed estimators.

Section 4.3 shows accuracy degrades when the serving workload drifts away
from the training workload.  A deployed query-driven estimator observes
true selectivities as feedback anyway, so drift is *detectable* online:
monitor the squared prediction error and flag when its recent level rises
significantly above the level at deployment.

:class:`DriftDetector` implements a one-sided CUSUM on squared errors —
the standard change-point statistic: it accumulates exceedances of the
baseline error (plus a slack), and signals when the accumulation crosses
a threshold calibrated from the baseline's variability.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DriftDetector"]


class DriftDetector:
    """One-sided CUSUM on an estimator's squared prediction errors.

    Parameters
    ----------
    baseline_errors:
        Squared errors observed right after (re)training — e.g. on a
        held-out slice of the training feedback.  Defines the in-control
        level and scale.
    slack:
        Allowance in baseline standard deviations added to the mean before
        an observation counts as an exceedance (CUSUM's ``k``); larger =
        less sensitive.  Squared errors are heavy-tailed, so the default
        (1.0) is higher than the textbook Gaussian choice of 0.5 — at the
        defaults the in-control false-alarm rate over 200 observations is
        ~0 (calibrated in the tests).
    threshold:
        Alarm level in baseline standard deviations (CUSUM's ``h``).
    """

    def __init__(
        self,
        baseline_errors: np.ndarray,
        slack: float = 1.0,
        threshold: float = 12.0,
    ):
        baseline = np.asarray(baseline_errors, dtype=float)
        if baseline.size < 2:
            raise ValueError("need at least 2 baseline errors")
        if not np.all(np.isfinite(baseline)) or np.any(baseline < 0):
            raise ValueError("baseline errors must be finite and non-negative")
        if slack < 0:
            raise ValueError(f"slack must be non-negative, got {slack}")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        self.mean = float(baseline.mean())
        self.scale = float(max(baseline.std(ddof=1), 1e-9))
        self.slack = float(slack)
        self.threshold = float(threshold)
        self._statistic = 0.0
        self._observations = 0

    @property
    def statistic(self) -> float:
        """Current CUSUM statistic (in baseline standard deviations)."""
        return self._statistic

    @property
    def observations(self) -> int:
        return self._observations

    def update(self, estimated: float, true: float) -> bool:
        """Feed one (estimate, truth) pair; returns True when drift fires."""
        error = (float(estimated) - float(true)) ** 2
        standardized = (error - self.mean) / self.scale
        self._statistic = max(0.0, self._statistic + standardized - self.slack)
        self._observations += 1
        return self._statistic >= self.threshold

    def update_many(self, estimated, true) -> bool:
        """Feed a batch; returns True if drift fired at any point."""
        est = np.asarray(estimated, dtype=float)
        tru = np.asarray(true, dtype=float)
        if est.shape != tru.shape:
            raise ValueError(f"shape mismatch: {est.shape} vs {tru.shape}")
        fired = False
        for e, t in zip(est, tru):
            fired = self.update(e, t) or fired
        return fired

    def reset(self) -> None:
        """Clear the statistic (call after retraining)."""
        self._statistic = 0.0
        self._observations = 0
