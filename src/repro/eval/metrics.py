"""Error measures of Section 4 ("Error Measures").

* **RMS error** — root mean squared difference between estimated and true
  selectivity.
* **Q-error** — per-query ratio ``max(ŝ, s) / min(ŝ, s)``; reported as
  quantiles (50th/95th/99th/MAX in the paper's tables).  The paper does
  not state its zero-handling convention; we use the standard floor of one
  tuple's worth of selectivity (``1/n_rows``) on both operands, which keeps
  the ratio finite and is the convention of the benchmark paper [46] the
  datasets come from.
* **L∞ error** — maximum absolute deviation (Section 4.6).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["rms_error", "linf_error", "q_errors", "q_error_quantiles"]

#: Default Q-error floor: one tuple out of the ~40k-row synthetic datasets.
DEFAULT_Q_FLOOR = 1.0 / 40_000


def _validate(estimated, true) -> tuple[np.ndarray, np.ndarray]:
    est = np.asarray(estimated, dtype=float)
    tru = np.asarray(true, dtype=float)
    if est.shape != tru.shape:
        raise ValueError(f"shape mismatch: estimated {est.shape} vs true {tru.shape}")
    if est.size == 0:
        raise ValueError("empty evaluation sample")
    return est, tru


def rms_error(estimated, true) -> float:
    """Root mean squared selectivity error."""
    est, tru = _validate(estimated, true)
    return float(np.sqrt(np.mean((est - tru) ** 2)))


def linf_error(estimated, true) -> float:
    """Maximum absolute selectivity error."""
    est, tru = _validate(estimated, true)
    return float(np.max(np.abs(est - tru)))


def q_errors(estimated, true, floor: float = DEFAULT_Q_FLOOR) -> np.ndarray:
    """Per-query Q-errors ``max(ŝ, s)/min(ŝ, s)`` with a zero floor."""
    est, tru = _validate(estimated, true)
    if floor <= 0:
        raise ValueError(f"floor must be positive, got {floor}")
    est = np.maximum(est, floor)
    tru = np.maximum(tru, floor)
    return np.maximum(est, tru) / np.minimum(est, tru)


def q_error_quantiles(
    estimated,
    true,
    quantiles: Sequence[float] = (0.5, 0.95, 0.99, 1.0),
    floor: float = DEFAULT_Q_FLOOR,
) -> dict[float, float]:
    """Q-error quantiles, defaulting to the paper's 50th/95th/99th/MAX."""
    errors = q_errors(estimated, true, floor=floor)
    return {q: float(np.quantile(errors, q)) for q in quantiles}
