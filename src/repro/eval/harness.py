"""Experiment harness: workload construction, training, timing, scoring.

Every benchmark follows the same skeleton (Section 4's setup): build a
dataset projection, generate training and test workloads from the same
distribution, label both with exact selectivities, fit an estimator on the
training pairs, and score predictions on the test pairs.  This module
factors that skeleton so each benchmark file only declares its sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.estimator import SelectivityEstimator
from repro.data.datasets import Dataset
from repro.data.selectivity import label_queries
from repro.data.workloads import WorkloadSpec, generate_workload
from repro.eval.metrics import linf_error, q_error_quantiles, rms_error
from repro.geometry.ranges import Range
from repro.observability.tracing import span

__all__ = ["ExperimentResult", "make_workload", "train_test_workload", "evaluate_estimator"]


@dataclass
class Workload:
    """Labeled query workload."""

    queries: list[Range]
    selectivities: np.ndarray

    def __len__(self) -> int:
        return len(self.queries)

    def nonempty(self, floor: float = 0.0) -> "Workload":
        """Restrict to queries with true selectivity above ``floor``.

        (Figure 14 / Table 1's "non-empty" variant.)
        """
        keep = [i for i, s in enumerate(self.selectivities) if s > floor]
        return Workload(
            [self.queries[i] for i in keep], self.selectivities[list(keep)]
        )


@dataclass
class ExperimentResult:
    """One (estimator, workload) evaluation record."""

    name: str
    train_size: int
    model_size: int
    fit_seconds: float
    predict_seconds: float
    rms: float
    linf: float
    q_quantiles: dict[float, float] = field(default_factory=dict)
    quarantined: int = 0

    def row(self) -> dict[str, object]:
        """Flat dict for the reporting helpers."""
        record: dict[str, object] = {
            "method": self.name,
            "train": self.train_size,
            "buckets": self.model_size,
            "fit_s": round(self.fit_seconds, 3),
            "rms": round(self.rms, 5),
            "linf": round(self.linf, 5),
        }
        for q, v in self.q_quantiles.items():
            label = "MAX" if q >= 1.0 else f"q{int(q * 100)}"
            record[label] = round(v, 3)
        return record


def make_workload(
    dataset: Dataset,
    count: int,
    rng: np.random.Generator,
    spec: WorkloadSpec | None = None,
) -> Workload:
    """Generate and label a workload against ``dataset``."""
    queries = generate_workload(count, dataset.dim, rng, spec=spec, dataset=dataset)
    return Workload(queries, label_queries(dataset, queries))


def train_test_workload(
    dataset: Dataset,
    train_size: int,
    test_size: int,
    rng: np.random.Generator,
    spec: WorkloadSpec | None = None,
) -> tuple[Workload, Workload]:
    """Independent train/test workloads from the same distribution."""
    train = make_workload(dataset, train_size, rng, spec=spec)
    test = make_workload(dataset, test_size, rng, spec=spec)
    return train, test


def evaluate_estimator(
    name: str,
    estimator: SelectivityEstimator,
    train: Workload,
    test: Workload,
    q_floor: float | None = None,
    sanitize_policy: str | None = None,
) -> ExperimentResult:
    """Fit on ``train``, score on ``test``, time both phases.

    ``sanitize_policy`` (``"raise"`` / ``"drop"`` / ``"clamp"``) screens
    the training workload first; the quarantine count lands on the
    result's ``quarantined`` field.  The robustness benchmark uses this
    to fit on deliberately corrupted feedback.
    """
    with span("eval/fit", method=name, train=len(train)) as fit_span:
        estimator.fit(train.queries, train.selectivities, policy=sanitize_policy)
    with span("eval/predict", method=name, test=len(test)) as predict_span:
        predictions = estimator.predict_many(test.queries)
    kwargs = {} if q_floor is None else {"floor": q_floor}
    return ExperimentResult(
        name=name,
        train_size=len(train),
        model_size=estimator.model_size,
        fit_seconds=fit_span.duration,
        predict_seconds=predict_span.duration,
        rms=rms_error(predictions, test.selectivities),
        linf=linf_error(predictions, test.selectivities),
        q_quantiles=q_error_quantiles(predictions, test.selectivities, **kwargs),
        quarantined=(
            estimator.sanitization_.quarantined
            if getattr(estimator, "sanitization_", None) is not None
            else 0
        ),
    )
