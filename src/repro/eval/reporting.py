"""Plain-text reporting: the benchmark harness prints the same rows and
series the paper's tables and figures show, as fixed-width tables."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_table", "format_series"]


def format_table(rows: Sequence[Mapping[str, object]], title: str | None = None) -> str:
    """Fixed-width table from a list of homogeneous dicts."""
    if not rows:
        return f"{title}\n(empty)" if title else "(empty)"
    columns = list(rows[0].keys())
    widths = {c: len(str(c)) for c in columns}
    for row in rows:
        for c in columns:
            widths[c] = max(widths[c], len(_fmt(row.get(c, ""))))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: Mapping[str, Sequence[object]],
    title: str | None = None,
) -> str:
    """One row per x value, one column per series — a figure as a table."""
    rows = []
    for i, x in enumerate(x_values):
        row: dict[str, object] = {x_label: x}
        for name, values in series.items():
            row[name] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, title=title)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.5g}"
    return str(value)
