"""Error analysis: selectivity-stratified breakdowns.

Aggregate RMS hides *where* an estimator fails.  The benchmark literature
(e.g. the study [46] the paper builds on) stratifies errors by true
selectivity: highly selective queries are where Q-error explodes and where
plan choices flip, while RMS is dominated by the unselective tail.  This
module produces that breakdown for any fitted estimator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.estimator import SelectivityEstimator
from repro.eval.metrics import DEFAULT_Q_FLOOR, q_errors, rms_error
from repro.geometry.ranges import Range

__all__ = ["StratumReport", "stratified_error_report", "DEFAULT_STRATA"]

#: Decade strata over true selectivity, the benchmark-paper convention.
DEFAULT_STRATA = (0.0, 1e-4, 1e-3, 1e-2, 1e-1, 1.0)


@dataclass(frozen=True)
class StratumReport:
    """Error statistics for one true-selectivity stratum."""

    low: float
    high: float
    queries: int
    rms: float
    mean_q_error: float
    max_q_error: float

    def row(self) -> dict[str, object]:
        return {
            "stratum": f"[{self.low:g}, {self.high:g})",
            "queries": self.queries,
            "rms": round(self.rms, 5),
            "mean_q": round(self.mean_q_error, 3),
            "max_q": round(self.max_q_error, 3),
        }


def stratified_error_report(
    estimator: SelectivityEstimator,
    queries: Sequence[Range],
    true_selectivities: Sequence[float],
    strata: Sequence[float] = DEFAULT_STRATA,
    q_floor: float = DEFAULT_Q_FLOOR,
) -> list[StratumReport]:
    """Per-stratum RMS and Q-error of ``estimator`` on a labeled workload.

    ``strata`` are the boundaries of half-open selectivity intervals
    ``[strata[i], strata[i+1])`` (the final interval is closed above).
    Empty strata are omitted from the report.
    """
    truths = np.asarray(true_selectivities, dtype=float)
    if truths.shape != (len(queries),):
        raise ValueError(
            f"{len(queries)} queries but selectivities of shape {truths.shape}"
        )
    if len(strata) < 2:
        raise ValueError("need at least two stratum boundaries")
    bounds = np.asarray(strata, dtype=float)
    if np.any(np.diff(bounds) <= 0):
        raise ValueError("strata boundaries must be strictly increasing")
    predictions = estimator.predict_many(list(queries))

    reports: list[StratumReport] = []
    for low, high in zip(bounds[:-1], bounds[1:]):
        if high >= bounds[-1]:
            mask = (truths >= low) & (truths <= high)
        else:
            mask = (truths >= low) & (truths < high)
        count = int(mask.sum())
        if count == 0:
            continue
        errs = q_errors(predictions[mask], truths[mask], floor=q_floor)
        reports.append(
            StratumReport(
                low=float(low),
                high=float(high),
                queries=count,
                rms=rms_error(predictions[mask], truths[mask]),
                mean_q_error=float(errs.mean()),
                max_q_error=float(errs.max()),
            )
        )
    return reports
