"""repro — learned selectivity estimation for range queries.

A from-scratch reproduction of *"Selectivity Functions of Range Queries
are Learnable"* (Hu, Liu, Xiu, Agarwal, Panigrahi, Roy, Yang — SIGMOD
2022): the learning-theoretic framework (Section 2), the two generic
query-driven learners QuadHist and PtsHist (Section 3), the ISOMER and
QuickSel baselines, and the full experimental harness (Section 4).

Quickstart
----------
>>> import numpy as np
>>> from repro import QuadHist, power_like, generate_workload, label_queries
>>> rng = np.random.default_rng(0)
>>> data = power_like(rows=10_000).project([0, 3])      # 2-D projection
>>> queries = generate_workload(200, 2, rng, dataset=data)
>>> model = QuadHist(tau=0.01).fit(queries, label_queries(data, queries))
>>> round(model.predict(queries[0]), 2) == round(label_queries(data, queries[:1])[0], 2)
True
"""

from repro.core import (
    ArrangementERM,
    GaussianMixtureHist,
    KdHist,
    PtsHist,
    QuadHist,
    SelectivityEstimator,
)
from repro.baselines import Isomer, MeanEstimator, QuickSel, UniformEstimator
from repro.data import (
    Dataset,
    census_like,
    dmv_like,
    forest_like,
    generate_workload,
    label_queries,
    load_dataset,
    power_like,
    shifted_gaussian_workload,
    true_selectivity,
    WorkloadSpec,
)
from repro.distributions import DiscreteDistribution, HistogramDistribution
from repro.eval import linf_error, q_error_quantiles, rms_error
from repro.geometry import Ball, Box, Halfspace, Range, unit_box

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # learners
    "SelectivityEstimator",
    "QuadHist",
    "PtsHist",
    "ArrangementERM",
    "GaussianMixtureHist",
    "KdHist",
    # baselines
    "Isomer",
    "QuickSel",
    "UniformEstimator",
    "MeanEstimator",
    # data
    "Dataset",
    "power_like",
    "forest_like",
    "census_like",
    "dmv_like",
    "load_dataset",
    "WorkloadSpec",
    "generate_workload",
    "shifted_gaussian_workload",
    "true_selectivity",
    "label_queries",
    # models
    "HistogramDistribution",
    "DiscreteDistribution",
    # geometry
    "Range",
    "Box",
    "Halfspace",
    "Ball",
    "unit_box",
    # metrics
    "rms_error",
    "linf_error",
    "q_error_quantiles",
]
