"""Datasets, workloads, and ground-truth selectivity.

The paper evaluates on four real datasets (Power, Forest/CoverType, Census,
DMV).  This container has no network access, so
:mod:`~repro.data.synthetic` ships skewed, correlated synthetic stand-ins
with the same attribute counts and type mixes (see DESIGN.md §4 for the
substitution argument: Theorem 2.1 is distribution-free, so any skewed
distribution exercises the identical code paths and qualitative shapes).

:mod:`~repro.data.workloads` generates the paper's query workloads
(Data-driven / Random / Gaussian centers; box, halfspace and ball queries;
the shifted-Gaussian workloads of Section 4.3), and
:mod:`~repro.data.selectivity` computes exact ground-truth selectivities by
vectorised counting.
"""

from repro.data.datasets import AttributeType, Dataset
from repro.data.selectivity import label_queries, true_selectivity
from repro.data.synthetic import (
    census_like,
    dmv_like,
    forest_like,
    load_dataset,
    power_like,
)
from repro.data.workloads import (
    WorkloadSpec,
    generate_workload,
    shifted_gaussian_workload,
)
from repro.data.loaders import dataset_from_csv, dataset_from_records
from repro.data.sql import PredicateError, parse_predicate
from repro.data.io import (
    load_workload,
    range_from_dict,
    range_to_dict,
    save_workload,
)

__all__ = [
    "AttributeType",
    "Dataset",
    "true_selectivity",
    "label_queries",
    "power_like",
    "forest_like",
    "census_like",
    "dmv_like",
    "load_dataset",
    "WorkloadSpec",
    "generate_workload",
    "shifted_gaussian_workload",
    "save_workload",
    "load_workload",
    "range_to_dict",
    "range_from_dict",
    "parse_predicate",
    "PredicateError",
    "dataset_from_csv",
    "dataset_from_records",
]
