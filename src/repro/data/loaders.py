"""Loading real tables into the normalised Dataset format.

The benchmarks ship with synthetic stand-ins (no network access at build
time), but adopters with the actual UCI Power/Forest/Census or DMV CSVs —
or any other table — can load them here: numeric columns are min–max
normalised into [0, 1]; string columns are dictionary-encoded as
categoricals and mapped to their cell centers ``(code + 0.5)/cardinality``
(the same convention the synthetic generators use, so every estimator and
workload generator works unchanged).
"""

from __future__ import annotations

import csv
import pathlib
from typing import Sequence

import numpy as np

from repro.data.datasets import AttributeType, Dataset

__all__ = ["dataset_from_records", "dataset_from_csv"]


def dataset_from_records(
    name: str,
    columns: Sequence[Sequence],
    attribute_names: Sequence[str] | None = None,
) -> Dataset:
    """Build a Dataset from per-column value sequences.

    Columns whose values all parse as floats become numeric (min–max
    normalised); everything else is dictionary-encoded as categorical.
    """
    if not columns:
        raise ValueError("need at least one column")
    n_rows = len(columns[0])
    if n_rows == 0:
        raise ValueError("columns are empty")
    if any(len(c) != n_rows for c in columns):
        raise ValueError("columns must have equal length")

    encoded = np.empty((n_rows, len(columns)))
    kinds: list[AttributeType] = []
    cardinalities: list[int | None] = []
    for j, column in enumerate(columns):
        values, kind, cardinality = _encode_column(column)
        encoded[:, j] = values
        kinds.append(kind)
        cardinalities.append(cardinality)
    return Dataset(
        name,
        encoded,
        kinds=kinds,
        cardinalities=cardinalities,
        attribute_names=attribute_names,
    )


def _encode_column(column: Sequence) -> tuple[np.ndarray, AttributeType, int | None]:
    try:
        numeric = np.array([float(v) for v in column])
        if not np.all(np.isfinite(numeric)):
            raise ValueError
    except (TypeError, ValueError):
        return _encode_categorical(column)
    lo, hi = float(numeric.min()), float(numeric.max())
    span = hi - lo if hi > lo else 1.0
    return (numeric - lo) / span, AttributeType.NUMERIC, None


def _encode_categorical(column: Sequence) -> tuple[np.ndarray, AttributeType, int]:
    codes_of: dict[str, int] = {}
    codes = np.empty(len(column))
    for i, value in enumerate(column):
        key = str(value)
        if key not in codes_of:
            codes_of[key] = len(codes_of)
        codes[i] = codes_of[key]
    cardinality = len(codes_of)
    return (codes + 0.5) / cardinality, AttributeType.CATEGORICAL, cardinality


def dataset_from_csv(
    path: str | pathlib.Path,
    name: str | None = None,
    delimiter: str = ",",
    has_header: bool = True,
    max_rows: int | None = None,
) -> Dataset:
    """Load a CSV file into a normalised Dataset.

    Rows with a wrong field count are skipped (real UCI files contain a
    few); ``max_rows`` caps memory for the very large tables (DMV is 11M
    rows — a uniform prefix sample is fine for selectivity work).
    """
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = []
        header: list[str] | None = None
        expected: int | None = None
        for i, row in enumerate(reader):
            if i == 0 and has_header:
                header = [field.strip() for field in row]
                expected = len(header)
                continue
            if expected is None:
                expected = len(row)
            if len(row) != expected:
                continue  # malformed line
            rows.append(row)
            if max_rows is not None and len(rows) >= max_rows:
                break
    if not rows:
        raise ValueError(f"no usable rows in {path}")
    columns = list(zip(*rows))
    return dataset_from_records(
        name or path.stem, columns, attribute_names=header
    )
