"""Ground-truth selectivity: exact vectorised counting.

``s_D(R) = Pr_{x ~ D}[x in R]`` where ``D`` is the empirical distribution
of the dataset — i.e. the fraction of rows satisfying the predicate.  This
is the label oracle for training and the truth oracle for evaluation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.geometry.batch import CHUNK_ELEMENTS, containment_matrix
from repro.geometry.ranges import Range

__all__ = ["true_selectivity", "label_queries"]


def true_selectivity(dataset: Dataset, query: Range) -> float:
    """Exact selectivity of ``query`` against the dataset rows."""
    if query.dim != dataset.dim:
        raise ValueError(f"query dim {query.dim} != dataset dim {dataset.dim}")
    inside = np.asarray(query.contains(dataset.rows))
    return float(inside.mean())


def label_queries(dataset: Dataset, queries: Sequence[Range]) -> np.ndarray:
    """Exact selectivities for a whole workload, batched over both axes.

    Queries are grouped by range type and evaluated against all rows in one
    membership matrix per chunk (boxes, halfspaces and balls hit the batch
    kernels of :mod:`repro.geometry.batch`; other types fall back to their
    own vectorised ``contains``).  Chunking keeps peak memory bounded by
    ``CHUNK_ELEMENTS`` float64 elements regardless of workload size.
    """
    queries = list(queries)
    for query in queries:
        if query.dim != dataset.dim:
            raise ValueError(f"query dim {query.dim} != dataset dim {dataset.dim}")
    if not queries:
        return np.zeros(0)
    rows = dataset.rows
    n_rows, dim = rows.shape
    out = np.empty(len(queries))
    step = max(1, CHUNK_ELEMENTS // max(1, n_rows * dim))
    for start in range(0, len(queries), step):
        chunk = queries[start : start + step]
        out[start : start + step] = containment_matrix(chunk, rows).mean(axis=1)
    return out
