"""Ground-truth selectivity: exact vectorised counting.

``s_D(R) = Pr_{x ~ D}[x in R]`` where ``D`` is the empirical distribution
of the dataset — i.e. the fraction of rows satisfying the predicate.  This
is the label oracle for training and the truth oracle for evaluation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data.datasets import Dataset
from repro.geometry.ranges import Range

__all__ = ["true_selectivity", "label_queries"]


def true_selectivity(dataset: Dataset, query: Range) -> float:
    """Exact selectivity of ``query`` against the dataset rows."""
    if query.dim != dataset.dim:
        raise ValueError(f"query dim {query.dim} != dataset dim {dataset.dim}")
    inside = np.asarray(query.contains(dataset.rows))
    return float(inside.mean())


def label_queries(dataset: Dataset, queries: Sequence[Range]) -> np.ndarray:
    """Exact selectivities for a whole workload (vectorised per query)."""
    return np.array([true_selectivity(dataset, q) for q in queries])
