"""A small SQL front-end: conjunctive WHERE clauses → query ranges.

The paper writes its query classes as SQL::

    SELECT * FROM T WHERE a1 <= A1 AND A1 <= b1 AND a2 <= A2 AND A2 <= b2
    SELECT * FROM T WHERE 0.3 + 1.0*A1 - 2.0*A2 >= 0
    SELECT * FROM T WHERE (A1-0.2)^2 + (A2-0.7)^2 <= 0.04

This module parses those three shapes against a dataset's attribute names
and produces the corresponding :class:`~repro.geometry.ranges.Range`, so a
workload can be written as SQL strings:

* conjunctions of per-attribute comparisons (``<=``, ``<``, ``>=``, ``>``,
  ``=``, ``BETWEEN x AND y``) → :class:`Box`;
* one linear inequality over several attributes → :class:`Halfspace`;
* a sum of squared attribute offsets compared to ``r^2`` → :class:`Ball`.

Deliberately minimal: conjunctive predicates only (the paper's setting),
numeric literals, case-insensitive keywords.  Errors are precise about
what was not understood.
"""

from __future__ import annotations

import re
from typing import Sequence

import numpy as np

from repro.geometry.ranges import Ball, Box, Halfspace, Range

__all__ = ["parse_predicate", "PredicateError"]


class PredicateError(ValueError):
    """Raised when a WHERE clause cannot be parsed."""


_NUM = r"[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?"
_COMPARISON = re.compile(
    rf"^\s*(?:(?P<lhs_num>{_NUM})\s*(?P<op1><=|>=|<|>|=)\s*)?"
    rf"(?P<attr>[A-Za-z_]\w*)"
    rf"(?:\s*(?P<op2><=|>=|<|>|=)\s*(?P<rhs_num>{_NUM}))?\s*$"
)
_BETWEEN = re.compile(
    rf"^\s*(?P<attr>[A-Za-z_]\w*)\s+between\s+(?P<lo>{_NUM})\s+and\s+(?P<hi>{_NUM})\s*$",
    re.IGNORECASE,
)
_BALL_TERM = re.compile(
    rf"^\s*\(\s*(?P<attr>[A-Za-z_]\w*)\s*-\s*(?P<center>{_NUM})\s*\)\s*\^\s*2\s*$"
)
_LINEAR_TERM = re.compile(
    rf"^\s*(?P<sign>[-+]?)\s*(?:(?P<coeff>{_NUM})\s*\*\s*)?(?P<attr>[A-Za-z_]\w*)\s*$"
)


def _split_conjuncts(clause: str) -> list[str]:
    """Split on top-level AND (case-insensitive), respecting parentheses.

    The AND inside ``BETWEEN x AND y`` is protected first (replaced by a
    placeholder and restored after splitting).
    """
    clause = re.sub(
        rf"(between\s+{_NUM})\s+and\s+({_NUM})",
        r"\1 ~BTWAND~ \2",
        clause,
        flags=re.IGNORECASE,
    )
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    tokens = re.split(r"(\(|\)|\band\b)", clause, flags=re.IGNORECASE)
    for token in tokens:
        if token == "(":
            depth += 1
            current.append(token)
        elif token == ")":
            depth -= 1
            current.append(token)
        elif token.lower() == "and" and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(token)
    parts.append("".join(current))
    return [p.replace("~BTWAND~", "AND").strip() for p in parts if p.strip()]


def _attr_index(name: str, attributes: Sequence[str]) -> int:
    try:
        return list(attributes).index(name)
    except ValueError:
        raise PredicateError(
            f"unknown attribute {name!r}; available: {list(attributes)}"
        ) from None


def _try_ball(clause: str, attributes: Sequence[str]) -> Ball | None:
    """``(A1-a1)^2 + (A2-a2)^2 <= r2`` → Ball."""
    match = re.match(rf"^\s*(?P<lhs>.+?)\s*<=\s*(?P<rhs>{_NUM})\s*$", clause)
    if match is None:
        return None
    terms = match.group("lhs").split("+")
    center = np.full(len(attributes), np.nan)
    for term in terms:
        term_match = _BALL_TERM.match(term)
        if term_match is None:
            return None
        idx = _attr_index(term_match.group("attr"), attributes)
        center[idx] = float(term_match.group("center"))
    if np.isnan(center).any():
        # Unmentioned attributes make this not a ball over the full space;
        # treat only full-dimensional balls (the paper's query class).
        return None
    radius_sq = float(match.group("rhs"))
    if radius_sq < 0:
        raise PredicateError(f"negative squared radius {radius_sq}")
    return Ball(center, float(np.sqrt(radius_sq)))


def _try_halfspace(clause: str, attributes: Sequence[str]) -> Halfspace | None:
    """``c0 + c1*A1 + ... >= 0``-style linear inequality → Halfspace."""
    match = re.match(rf"^\s*(?P<lhs>.+?)\s*(?P<op>>=|<=)\s*(?P<rhs>{_NUM})\s*$", clause)
    if match is None:
        return None
    lhs = match.group("lhs")
    # Tokenise into +/- separated terms.
    pieces = re.findall(rf"[-+]?[^-+]+", lhs)
    normal = np.zeros(len(attributes))
    constant = 0.0
    for piece in pieces:
        piece = piece.strip()
        if not piece:
            continue
        if re.fullmatch(_NUM, piece):
            constant += float(piece)
            continue
        term_match = _LINEAR_TERM.match(piece)
        if term_match is None:
            return None
        coeff = float(term_match.group("coeff") or 1.0)
        if term_match.group("sign") == "-":
            coeff = -coeff
        normal[_attr_index(term_match.group("attr"), attributes)] += coeff
    if np.allclose(normal, 0.0):
        return None
    rhs = float(match.group("rhs"))
    # lhs + constant OP rhs  <=>  normal.x OP rhs - constant
    offset = rhs - constant
    if match.group("op") == ">=":
        return Halfspace(normal, offset)
    return Halfspace(-normal, -offset)


def _apply_comparison(
    lows: np.ndarray, highs: np.ndarray, idx: int, op: str, value: float, attr_on_left: bool
) -> None:
    # Normalise to attribute-on-left form.
    if not attr_on_left:
        flip = {"<=": ">=", ">=": "<=", "<": ">", ">": "<", "=": "="}
        op = flip[op]
    if op in ("<=", "<"):
        highs[idx] = min(highs[idx], value)
    elif op in (">=", ">"):
        lows[idx] = max(lows[idx], value)
    else:  # "="
        lows[idx] = max(lows[idx], value)
        highs[idx] = min(highs[idx], value)


def parse_predicate(clause: str, attributes: Sequence[str]) -> Range:
    """Parse a conjunctive WHERE clause into a Range.

    Parameters
    ----------
    clause:
        The text after ``WHERE`` (the keyword itself is accepted too).
    attributes:
        Ordered attribute names defining the ambient dimensions.

    Returns
    -------
    A :class:`Box` for per-attribute comparisons, a :class:`Halfspace` for
    a single linear inequality, or a :class:`Ball` for a sum-of-squares
    predicate.
    """
    if not attributes:
        raise PredicateError("attributes must be non-empty")
    text = re.sub(r"^\s*where\s+", "", clause.strip(), flags=re.IGNORECASE)
    if not text:
        raise PredicateError("empty predicate")

    ball = _try_ball(text, attributes)
    if ball is not None:
        return ball
    conjuncts = _split_conjuncts(text)

    # A single multi-attribute linear inequality → halfspace.
    if len(conjuncts) == 1:
        mentioned = set(re.findall(r"[A-Za-z_]\w*", conjuncts[0]))
        mentioned.discard("and")
        attrs_mentioned = [a for a in attributes if a in mentioned]
        if len(attrs_mentioned) > 1 or "*" in conjuncts[0]:
            halfspace = _try_halfspace(conjuncts[0], attributes)
            if halfspace is not None:
                return halfspace

    lows = np.zeros(len(attributes))
    highs = np.ones(len(attributes))
    for conjunct in conjuncts:
        between = _BETWEEN.match(conjunct)
        if between is not None:
            idx = _attr_index(between.group("attr"), attributes)
            lo, hi = float(between.group("lo")), float(between.group("hi"))
            if lo > hi:
                raise PredicateError(f"BETWEEN bounds reversed in {conjunct!r}")
            lows[idx] = max(lows[idx], lo)
            highs[idx] = min(highs[idx], hi)
            continue
        comparison = _COMPARISON.match(conjunct)
        if comparison is None:
            raise PredicateError(f"cannot parse conjunct {conjunct!r}")
        attr = comparison.group("attr")
        idx = _attr_index(attr, attributes)
        lhs_num, op1 = comparison.group("lhs_num"), comparison.group("op1")
        op2, rhs_num = comparison.group("op2"), comparison.group("rhs_num")
        if lhs_num is None and rhs_num is None:
            raise PredicateError(f"no comparison value in {conjunct!r}")
        if lhs_num is not None:
            _apply_comparison(lows, highs, idx, op1, float(lhs_num), attr_on_left=False)
        if rhs_num is not None:
            _apply_comparison(lows, highs, idx, op2, float(rhs_num), attr_on_left=True)
    highs = np.maximum(highs, lows - 1e-15)
    if np.any(lows > highs):
        raise PredicateError("contradictory bounds produce an empty range")
    return Box(lows, highs)
