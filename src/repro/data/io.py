"""Workload (de)serialization.

Real deployments collect query feedback in one process and train in
another, so labeled workloads need a stable on-disk format.  Ranges are
encoded as tagged JSON objects; a workload file is::

    {"version": 1,
     "queries": [{"type": "box", "lows": [...], "highs": [...]}, ...],
     "selectivities": [...]}

Only the closed-form range types round-trip (boxes, halfspaces, balls,
disc-intersection queries); semi-algebraic ranges hold arbitrary callables
and are rejected with a clear error.
"""

from __future__ import annotations

import json
import pathlib
from typing import Sequence

import numpy as np

from repro.geometry.ranges import Ball, Box, DiscIntersectionRange, Halfspace, Range

__all__ = ["range_to_dict", "range_from_dict", "save_workload", "load_workload"]

_FORMAT_VERSION = 1


def range_to_dict(range_: Range) -> dict:
    """Encode a range as a tagged, JSON-serialisable dict."""
    if isinstance(range_, Box):
        return {
            "type": "box",
            "lows": range_.lows.tolist(),
            "highs": range_.highs.tolist(),
        }
    if isinstance(range_, Halfspace):
        return {
            "type": "halfspace",
            "normal": range_.normal.tolist(),
            "offset": range_.offset,
        }
    if isinstance(range_, Ball):
        return {
            "type": "ball",
            "center": range_.ball_center.tolist(),
            "radius": range_.radius,
        }
    if isinstance(range_, DiscIntersectionRange):
        return {
            "type": "disc-intersection",
            "center": range_.query_center.tolist(),
            "radius": range_.query_radius,
            "max_data_radius": range_.max_data_radius,
        }
    raise TypeError(
        f"{type(range_).__name__} is not serialisable (only closed-form range types are)"
    )


def range_from_dict(data: dict) -> Range:
    """Decode a range from its tagged dict encoding."""
    kind = data.get("type")
    if kind == "box":
        return Box(data["lows"], data["highs"])
    if kind == "halfspace":
        return Halfspace(data["normal"], data["offset"])
    if kind == "ball":
        return Ball(data["center"], data["radius"])
    if kind == "disc-intersection":
        return DiscIntersectionRange(
            data["center"], data["radius"], data.get("max_data_radius", 1.0)
        )
    raise ValueError(f"unknown range type {kind!r}")


def save_workload(
    path: str | pathlib.Path,
    queries: Sequence[Range],
    selectivities: Sequence[float],
) -> None:
    """Write a labeled workload to a JSON file."""
    labels = np.asarray(selectivities, dtype=float)
    if labels.shape != (len(queries),):
        raise ValueError(
            f"{len(queries)} queries but selectivities of shape {labels.shape}"
        )
    payload = {
        "version": _FORMAT_VERSION,
        "queries": [range_to_dict(q) for q in queries],
        "selectivities": labels.tolist(),
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_workload(path: str | pathlib.Path) -> tuple[list[Range], np.ndarray]:
    """Read a labeled workload written by :func:`save_workload`."""
    payload = json.loads(pathlib.Path(path).read_text())
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported workload format version {version!r}")
    queries = [range_from_dict(d) for d in payload["queries"]]
    selectivities = np.asarray(payload["selectivities"], dtype=float)
    if selectivities.shape != (len(queries),):
        raise ValueError("corrupt workload file: length mismatch")
    return queries, selectivities
