"""Dataset container with the paper's normalisation conventions.

Section 4: "we normalize the domain of each attribute into [0, 1]" and "we
will choose a subset of attributes randomly and project the tuples on the
chosen attributes".  Categorical attributes are discretised: category ``c``
of a ``C``-category attribute occupies the cell ``[c/C, (c+1)/C)`` and rows
carry the cell center ``(c + 0.5)/C``, so an equality predicate becomes the
cell interval — a positive-width box that the histogram models can reason
about (the paper's "width is zero" convention breaks ``Vol(B ∩ R)``, so we
use cell-width predicates; selectivities are identical).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["AttributeType", "Dataset"]


class AttributeType(enum.Enum):
    """Attribute kind, determining predicate generation."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class _Attribute:
    name: str
    kind: AttributeType
    cardinality: int | None  # number of categories (categorical only)


class Dataset:
    """Normalised relational table: rows in ``[0, 1]^d`` plus attribute metadata."""

    def __init__(
        self,
        name: str,
        rows: np.ndarray,
        kinds: Sequence[AttributeType] | None = None,
        cardinalities: Sequence[int | None] | None = None,
        attribute_names: Sequence[str] | None = None,
    ):
        data = np.asarray(rows, dtype=float)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError(f"rows must be a non-empty (n, d) array, got shape {data.shape}")
        if not np.all(np.isfinite(data)):
            raise ValueError("rows must be finite")
        if np.any(data < -1e-9) or np.any(data > 1.0 + 1e-9):
            raise ValueError("rows must be normalised into [0, 1]")
        d = data.shape[1]
        kinds = list(kinds) if kinds is not None else [AttributeType.NUMERIC] * d
        cardinalities = list(cardinalities) if cardinalities is not None else [None] * d
        names = list(attribute_names) if attribute_names is not None else [f"A{i}" for i in range(d)]
        if not len(kinds) == len(cardinalities) == len(names) == d:
            raise ValueError("attribute metadata length mismatch")
        for kind, card in zip(kinds, cardinalities):
            if kind is AttributeType.CATEGORICAL and (card is None or card < 1):
                raise ValueError("categorical attributes need a positive cardinality")
        self.name = name
        self.rows = np.clip(data, 0.0, 1.0)
        self.attributes = [
            _Attribute(n, k, c) for n, k, c in zip(names, kinds, cardinalities)
        ]

    @property
    def num_rows(self) -> int:
        return self.rows.shape[0]

    @property
    def dim(self) -> int:
        return self.rows.shape[1]

    @property
    def kinds(self) -> list[AttributeType]:
        return [a.kind for a in self.attributes]

    @property
    def cardinalities(self) -> list[int | None]:
        return [a.cardinality for a in self.attributes]

    def project(self, attribute_indices: Sequence[int]) -> "Dataset":
        """Project onto a subset of attributes (Section 4's setup step)."""
        idx = list(attribute_indices)
        if not idx:
            raise ValueError("projection needs at least one attribute")
        return Dataset(
            f"{self.name}[{','.join(str(i) for i in idx)}]",
            self.rows[:, idx],
            kinds=[self.attributes[i].kind for i in idx],
            cardinalities=[self.attributes[i].cardinality for i in idx],
            attribute_names=[self.attributes[i].name for i in idx],
        )

    def random_projection(self, dim: int, rng: np.random.Generator) -> "Dataset":
        """Random ``dim``-attribute projection, as in Section 4."""
        if not 1 <= dim <= self.dim:
            raise ValueError(f"dim must be in [1, {self.dim}], got {dim}")
        idx = sorted(rng.choice(self.dim, size=dim, replace=False).tolist())
        return self.project(idx)

    def numeric_projection(self, dim: int, rng: np.random.Generator) -> "Dataset":
        """Random projection onto numeric attributes only.

        Used for halfspace/ball workloads, where categorical equality
        predicates make no geometric sense.
        """
        numeric = [i for i, a in enumerate(self.attributes) if a.kind is AttributeType.NUMERIC]
        if dim > len(numeric):
            raise ValueError(
                f"dataset {self.name} has only {len(numeric)} numeric attributes, need {dim}"
            )
        idx = sorted(rng.choice(numeric, size=dim, replace=False).tolist())
        return self.project(idx)

    def sample_rows(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Uniform row sample (with replacement) — Data-driven query centers."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        idx = rng.integers(0, self.num_rows, size=count)
        return self.rows[idx]

    def categorical_cell(self, attribute: int, value: float) -> tuple[float, float]:
        """The ``[c/C, (c+1)/C]`` interval of the category containing ``value``."""
        attr = self.attributes[attribute]
        if attr.kind is not AttributeType.CATEGORICAL:
            raise ValueError(f"attribute {attribute} is not categorical")
        c = min(int(value * attr.cardinality), attr.cardinality - 1)
        return c / attr.cardinality, (c + 1) / attr.cardinality

    def __repr__(self) -> str:
        n_cat = sum(1 for a in self.attributes if a.kind is AttributeType.CATEGORICAL)
        return (
            f"Dataset({self.name!r}, rows={self.num_rows}, dim={self.dim}, "
            f"categorical={n_cat})"
        )
