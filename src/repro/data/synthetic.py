"""Synthetic stand-ins for the paper's four evaluation datasets.

The original datasets (UCI Power / Forest / Census, NYC DMV) are not
available offline, so each generator below produces a table with the same
attribute count, type mix, and — crucially — the *skew and correlation
structure* the experiments rely on.  Theorem 2.1 holds for arbitrary data
distributions, so any skewed correlated distribution exercises the same
code paths; DESIGN.md §4 records the substitution rationale per dataset.

All generators are deterministic given a seed, and default to ~40k rows —
large enough for stable ground-truth selectivities, small enough for a
single-CPU benchmark budget.
"""

from __future__ import annotations

import numpy as np

from repro.data.datasets import AttributeType, Dataset

__all__ = ["power_like", "forest_like", "census_like", "dmv_like", "load_dataset"]

_DEFAULT_ROWS = 40_000


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


def _normalise(columns: np.ndarray) -> np.ndarray:
    lo = columns.min(axis=0, keepdims=True)
    hi = columns.max(axis=0, keepdims=True)
    span = np.where(hi - lo > 0, hi - lo, 1.0)
    return (columns - lo) / span


def _zipf_codes(rng: np.random.Generator, n: int, cardinality: int, skew: float = 1.2) -> np.ndarray:
    """Zipf-distributed category codes in ``{0, ..., cardinality-1}``."""
    ranks = np.arange(1, cardinality + 1, dtype=float)
    probs = ranks**-skew
    probs /= probs.sum()
    return rng.choice(cardinality, size=n, p=probs)


def _categorical_column(codes: np.ndarray, cardinality: int) -> np.ndarray:
    """Map category codes to their cell centers ``(c + 0.5)/C``."""
    return (codes + 0.5) / cardinality


def power_like(rows: int = _DEFAULT_ROWS, seed: int = 42) -> Dataset:
    """Stand-in for UCI *Individual Household Electric Power Consumption*.

    7 numeric attributes: skewed power draws with many near-zero readings,
    a narrowly distributed voltage, and correlated sub-meterings — the
    lower-half concentration visible in the paper's Figure 7.
    """
    rng = np.random.default_rng(seed)
    # Latent household activity level drives correlations.
    activity = rng.beta(1.6, 4.0, size=rows)  # skewed toward low activity
    noise = lambda scale: rng.normal(0.0, scale, size=rows)  # noqa: E731

    # Quadratic response to activity gives the heavy right tail of real
    # household power draws (most readings small, occasional spikes).
    global_active = np.clip(activity**2 * 2.2 + 0.05 * np.abs(noise(1.0)), 0, None)
    global_reactive = np.clip(0.25 * activity**2 + 0.04 * np.abs(noise(1.0)), 0, None)
    voltage = 0.5 + 0.06 * noise(1.0) - 0.1 * activity  # dips under load
    intensity = global_active * 4.3 + 0.05 * np.abs(noise(1.0))
    # Sub-meterings: often exactly (near) zero, occasionally large.
    on1 = rng.random(rows) < 0.25 * (0.3 + activity)
    on2 = rng.random(rows) < 0.35 * (0.3 + activity)
    on3 = rng.random(rows) < 0.55 * (0.3 + activity)
    sub1 = np.where(on1, activity * 1.1 + 0.1 * np.abs(noise(1.0)), 0.002 * np.abs(noise(1.0)))
    sub2 = np.where(on2, activity * 0.9 + 0.1 * np.abs(noise(1.0)), 0.002 * np.abs(noise(1.0)))
    sub3 = np.where(on3, 0.4 + 0.2 * activity + 0.05 * noise(1.0), 0.003 * np.abs(noise(1.0)))
    columns = np.stack(
        [global_active, global_reactive, voltage, intensity, sub1, sub2, sub3], axis=1
    )
    return Dataset(
        "power",
        _normalise(columns),
        attribute_names=[
            "global_active_power",
            "global_reactive_power",
            "voltage",
            "global_intensity",
            "sub_metering_1",
            "sub_metering_2",
            "sub_metering_3",
        ],
    )


def forest_like(rows: int = _DEFAULT_ROWS, seed: int = 43) -> Dataset:
    """Stand-in for UCI *CoverType* (Forest).

    10 numeric attributes driven by latent terrain variables (elevation,
    slope, hydrology distance...), giving smooth nonlinear correlations and
    multiple clusters — the structure the dimensionality sweeps rely on.
    """
    rng = np.random.default_rng(seed)
    # Terrain: mixture of 4 "regions" with distinct elevation profiles.
    region = rng.integers(0, 4, size=rows)
    region_elev = np.array([0.25, 0.45, 0.65, 0.85])[region]
    elevation = np.clip(region_elev + 0.08 * rng.normal(size=rows), 0, 1)
    aspect = rng.random(rows)  # compass direction: uniform
    slope = np.clip(
        0.15 + 0.5 * np.abs(rng.normal(size=rows)) * (0.4 + elevation), 0, None
    )
    horiz_hydro = np.abs(rng.normal(0, 0.3, rows)) * (1.2 - elevation)
    vert_hydro = horiz_hydro * (0.4 + 0.3 * rng.random(rows)) + 0.02 * np.abs(
        rng.normal(size=rows)
    )
    horiz_road = np.abs(rng.normal(0, 0.4, rows)) + 0.3 * elevation
    hillshade_9am = _sigmoid(2.0 * (aspect - 0.3) + rng.normal(0, 0.4, rows))
    hillshade_noon = _sigmoid(3.0 - 4.0 * slope + rng.normal(0, 0.4, rows))
    hillshade_3pm = _sigmoid(2.0 * (0.7 - aspect) + rng.normal(0, 0.4, rows))
    horiz_fire = np.abs(rng.normal(0, 0.35, rows)) + 0.2 * (1 - elevation)
    columns = np.stack(
        [
            elevation,
            aspect,
            slope,
            horiz_hydro,
            vert_hydro,
            horiz_road,
            hillshade_9am,
            hillshade_noon,
            hillshade_3pm,
            horiz_fire,
        ],
        axis=1,
    )
    return Dataset(
        "forest",
        _normalise(columns),
        attribute_names=[
            "elevation",
            "aspect",
            "slope",
            "horiz_dist_hydrology",
            "vert_dist_hydrology",
            "horiz_dist_roadways",
            "hillshade_9am",
            "hillshade_noon",
            "hillshade_3pm",
            "horiz_dist_fire_points",
        ],
    )


def census_like(rows: int = _DEFAULT_ROWS, seed: int = 44) -> Dataset:
    """Stand-in for UCI *Census* (49K × 13: 8 categorical + 5 numeric)."""
    rng = np.random.default_rng(seed)
    age = np.clip(rng.gamma(6.0, 6.5, rows) / 100.0, 0, 1)
    education_years = np.clip(rng.normal(0.55, 0.15, rows) + 0.3 * (age - 0.4), 0, 1)
    log_income = 0.3 + 0.5 * education_years + 0.2 * age + 0.1 * rng.normal(size=rows)
    capital_gain = np.where(rng.random(rows) < 0.08, rng.random(rows), 0.0)
    hours_per_week = np.clip(rng.normal(0.42, 0.12, rows) + 0.1 * education_years, 0, 1)
    numeric = [age, education_years, np.clip(log_income, 0, None), capital_gain, hours_per_week]

    categorical_cards = [8, 16, 7, 14, 6, 5, 2, 40]  # workclass..native-country
    categorical_cols = []
    for card in categorical_cards:
        codes = _zipf_codes(rng, rows, card)
        categorical_cols.append(_categorical_column(codes, card))

    columns = np.stack(numeric + categorical_cols, axis=1)
    columns[:, :5] = _normalise(columns[:, :5])
    kinds = [AttributeType.NUMERIC] * 5 + [AttributeType.CATEGORICAL] * 8
    cards = [None] * 5 + list(categorical_cards)
    return Dataset("census", columns, kinds=kinds, cardinalities=cards)


def dmv_like(rows: int = _DEFAULT_ROWS, seed: int = 45) -> Dataset:
    """Stand-in for NYC *DMV* vehicle registrations (11M × 11: 10 categorical)."""
    rng = np.random.default_rng(seed)
    model_year = np.clip(rng.beta(5.0, 2.0, rows), 0, 1)  # skewed to recent years
    categorical_cards = [63, 30, 4, 25, 10, 3, 2, 2, 2, 5]
    # Correlate a couple of attributes (e.g. body type with vehicle class).
    base = _zipf_codes(rng, rows, categorical_cards[0])
    columns = [_categorical_column(base, categorical_cards[0])]
    for j, card in enumerate(categorical_cards[1:], start=1):
        codes = _zipf_codes(rng, rows, card)
        if j == 1:  # correlate with the first attribute
            codes = (codes + base) % card
        columns.append(_categorical_column(codes, card))
    columns.append(model_year)
    data = np.stack(columns, axis=1)
    kinds = [AttributeType.CATEGORICAL] * 10 + [AttributeType.NUMERIC]
    cards = list(categorical_cards) + [None]
    return Dataset("dmv", data, kinds=kinds, cardinalities=cards)


_GENERATORS = {
    "power": power_like,
    "forest": forest_like,
    "census": census_like,
    "dmv": dmv_like,
}


def load_dataset(name: str, rows: int = _DEFAULT_ROWS, seed: int | None = None) -> Dataset:
    """Load one of the four evaluation datasets by name."""
    if name not in _GENERATORS:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(_GENERATORS)}")
    generator = _GENERATORS[name]
    if seed is None:
        return generator(rows=rows)
    return generator(rows=rows, seed=seed)
