"""Query-workload generation (Section 4, "Workloads").

A workload is defined by (1) a *center* distribution — Data-driven (centers
sampled from the dataset rows), Random (uniform in the unit cube), or
Gaussian (mean 0.5, std 0.167 per dimension) — and (2) a *query type*:

* **box** — side lengths sampled independently and uniformly from [0, 1];
  categorical attributes get equality predicates (the category cell of the
  center, see :class:`~repro.data.datasets.Dataset`),
* **ball** — radius uniform in [0, 1],
* **halfspace** — the center lies on the boundary plane; the orientation is
  a uniformly random unit normal.

Generated queries are clipped to the unit data domain where the paper does
so (boxes); halfspaces and balls are kept as-is, their selectivities being
computed against the data anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import AttributeType, Dataset
from repro.geometry.ranges import Ball, Box, Halfspace, Range, unit_box

__all__ = ["WorkloadSpec", "generate_workload", "shifted_gaussian_workload"]

_CENTER_KINDS = ("data", "random", "gaussian")
_QUERY_KINDS = ("box", "ball", "halfspace")

#: Paper's Gaussian workload parameters: mean 0.5, std 0.167 per dimension.
GAUSSIAN_MEAN = 0.5
GAUSSIAN_STD = 0.167


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of a query workload."""

    query_kind: str = "box"
    center_kind: str = "data"
    gaussian_mean: float = GAUSSIAN_MEAN
    gaussian_std: float = GAUSSIAN_STD

    def __post_init__(self):
        if self.query_kind not in _QUERY_KINDS:
            raise ValueError(f"query_kind must be one of {_QUERY_KINDS}, got {self.query_kind!r}")
        if self.center_kind not in _CENTER_KINDS:
            raise ValueError(
                f"center_kind must be one of {_CENTER_KINDS}, got {self.center_kind!r}"
            )
        if self.gaussian_std <= 0:
            raise ValueError(f"gaussian_std must be positive, got {self.gaussian_std}")


def _sample_centers(
    spec: WorkloadSpec, dataset: Dataset | None, dim: int, count: int, rng: np.random.Generator
) -> np.ndarray:
    if spec.center_kind == "data":
        if dataset is None:
            raise ValueError("Data-driven workloads need a dataset")
        return dataset.sample_rows(count, rng)
    if spec.center_kind == "random":
        return rng.random((count, dim))
    centers = rng.normal(spec.gaussian_mean, spec.gaussian_std, size=(count, dim))
    return np.clip(centers, 0.0, 1.0)


def _box_query(
    center: np.ndarray,
    dataset: Dataset | None,
    rng: np.random.Generator,
    domain: Box,
) -> Box:
    dim = center.shape[0]
    widths = rng.random(dim)
    lows = center - widths / 2.0
    highs = center + widths / 2.0
    if dataset is not None:
        for axis, attr in enumerate(dataset.attributes):
            if attr.kind is AttributeType.CATEGORICAL:
                lo, hi = dataset.categorical_cell(axis, float(center[axis]))
                lows[axis], highs[axis] = lo, hi
    lows = np.maximum(lows, domain.lows)
    highs = np.minimum(highs, domain.highs)
    highs = np.maximum(highs, lows)
    return Box(lows, highs)


def _unit_normal(dim: int, rng: np.random.Generator) -> np.ndarray:
    while True:
        v = rng.normal(size=dim)
        norm = float(np.linalg.norm(v))
        if norm > 1e-12:
            return v / norm


def generate_workload(
    count: int,
    dim: int,
    rng: np.random.Generator,
    spec: WorkloadSpec | None = None,
    dataset: Dataset | None = None,
) -> list[Range]:
    """Generate ``count`` queries in ``dim`` dimensions per ``spec``.

    Parameters
    ----------
    dataset:
        Required for Data-driven centers and for categorical equality
        predicates; must match ``dim`` when given.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if spec is None:
        spec = WorkloadSpec()
    if dataset is not None and dataset.dim != dim:
        raise ValueError(f"dataset dim {dataset.dim} != requested dim {dim}")
    domain = unit_box(dim)
    centers = _sample_centers(spec, dataset, dim, count, rng)
    queries: list[Range] = []
    for center in centers:
        if spec.query_kind == "box":
            queries.append(_box_query(center, dataset, rng, domain))
        elif spec.query_kind == "ball":
            queries.append(Ball(center, float(rng.random())))
        else:
            queries.append(Halfspace.through_point(center, _unit_normal(dim, rng)))
    return queries


def shifted_gaussian_workload(
    count: int,
    dim: int,
    mean: float,
    rng: np.random.Generator,
    variance: float = 0.033,
    dataset: Dataset | None = None,
) -> list[Range]:
    """Shifted-Gaussian box workloads for the Section 4.3 heatmap.

    Centers are drawn from a Gaussian with the given scalar ``mean`` per
    dimension and covariance ``variance * I`` (the paper uses means
    (0.2, 0.2) ... (0.7, 0.7) with covariance 0.033).
    """
    spec = WorkloadSpec(
        query_kind="box",
        center_kind="gaussian",
        gaussian_mean=mean,
        gaussian_std=float(np.sqrt(variance)),
    )
    return generate_workload(count, dim, rng, spec=spec, dataset=dataset)
