"""A selectivity-estimation service (stdlib HTTP, no extra dependencies).

The deployment shape for a query-driven estimator: a database's optimizer
asks a sidecar service for estimates, and streams back true selectivities
observed during execution as feedback.  The service accumulates feedback,
retrains on demand (or automatically every ``retrain_every`` feedbacks),
and tracks workload drift with :class:`repro.eval.drift.DriftDetector`.

Endpoints (JSON in/out; ranges use the tagged encoding of
:mod:`repro.data.io`):

* ``POST /estimate``  ``{"query": {...}}`` → ``{"selectivity": 0.42}``
* ``POST /feedback``  ``{"query": {...}, "selectivity": 0.37}`` →
  ``{"pending": 12, "drift": false}``
* ``POST /retrain``   → ``{"trained_on": 200, "model_size": 800}``
* ``GET  /status``    → model / feedback / drift summary

Programmatic use goes through :class:`EstimatorService` directly; the HTTP
layer (:func:`serve`) is a thin adapter over it.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.core.estimator import SelectivityEstimator
from repro.data.io import range_from_dict
from repro.eval.drift import DriftDetector

__all__ = ["EstimatorService", "serve"]


class EstimatorService:
    """Thread-safe wrapper: estimate / collect feedback / retrain / drift.

    Parameters
    ----------
    estimator_factory:
        Zero-argument callable returning a fresh estimator; called on
        every (re)train so state never leaks between generations.
    retrain_every:
        Automatically retrain after this many new feedbacks (None = only
        on explicit ``retrain()``).
    min_feedback:
        Minimum accumulated feedback before the first training.
    drift_holdout:
        Fraction of feedback (most recent) held out to baseline the drift
        detector after each retrain.
    """

    def __init__(
        self,
        estimator_factory,
        retrain_every: int | None = None,
        min_feedback: int = 20,
        drift_holdout: float = 0.25,
    ):
        if retrain_every is not None and retrain_every < 1:
            raise ValueError(f"retrain_every must be >= 1, got {retrain_every}")
        if min_feedback < 2:
            raise ValueError(f"min_feedback must be >= 2, got {min_feedback}")
        if not 0.0 < drift_holdout < 1.0:
            raise ValueError(f"drift_holdout must be in (0, 1), got {drift_holdout}")
        self._factory = estimator_factory
        self.retrain_every = retrain_every
        self.min_feedback = int(min_feedback)
        self.drift_holdout = float(drift_holdout)
        self._lock = threading.Lock()
        self._model: SelectivityEstimator | None = None
        self._queries: list = []
        self._labels: list[float] = []
        self._since_train = 0
        self._trained_on = 0
        self._detector: DriftDetector | None = None
        self._drift_flag = False

    # -- programmatic API ------------------------------------------------

    def estimate(self, query) -> float:
        """Estimated selectivity; raises RuntimeError before first train."""
        with self._lock:
            if self._model is None:
                raise RuntimeError(
                    f"no model yet: need >= {self.min_feedback} feedbacks, "
                    f"have {len(self._queries)}"
                )
            return self._model.predict(query)

    def feedback(self, query, selectivity: float) -> dict:
        """Record one observed (query, true selectivity) pair."""
        if not 0.0 <= selectivity <= 1.0:
            raise ValueError(f"selectivity must be in [0, 1], got {selectivity}")
        with self._lock:
            if self._model is not None and self._detector is not None:
                estimate = self._model.predict(query)
                if self._detector.update(estimate, selectivity):
                    self._drift_flag = True
            self._queries.append(query)
            self._labels.append(float(selectivity))
            self._since_train += 1
            auto = (
                self.retrain_every is not None
                and self._since_train >= self.retrain_every
                and len(self._queries) >= self.min_feedback
            )
        if auto:
            self.retrain()
        with self._lock:
            return {"pending": self._since_train, "drift": self._drift_flag}

    def retrain(self) -> dict:
        """Fit a fresh model on all accumulated feedback."""
        with self._lock:
            if len(self._queries) < self.min_feedback:
                raise RuntimeError(
                    f"need >= {self.min_feedback} feedbacks to train, "
                    f"have {len(self._queries)}"
                )
            queries = list(self._queries)
            labels = np.asarray(self._labels)
        model = self._factory()
        holdout = max(2, int(len(queries) * self.drift_holdout))
        train_q, hold_q = queries[:-holdout] or queries, queries[-holdout:]
        train_s, hold_s = (
            labels[:-holdout] if len(queries) > holdout else labels,
            labels[-holdout:],
        )
        model.fit(train_q, train_s)
        baseline = (model.predict_many(hold_q) - hold_s) ** 2
        with self._lock:
            self._model = model
            self._trained_on = len(train_q)
            self._since_train = 0
            self._drift_flag = False
            self._detector = DriftDetector(baseline) if baseline.size >= 2 else None
            return {"trained_on": self._trained_on, "model_size": model.model_size}

    def status(self) -> dict:
        with self._lock:
            return {
                "trained": self._model is not None,
                "model_size": self._model.model_size if self._model else 0,
                "trained_on": self._trained_on,
                "feedback_total": len(self._queries),
                "feedback_pending": self._since_train,
                "drift": self._drift_flag,
                "drift_statistic": (
                    round(self._detector.statistic, 3) if self._detector else None
                ),
            }


# ---------------------------------------------------------------------------
# HTTP adapter
# ---------------------------------------------------------------------------


def _make_handler(service: EstimatorService):
    class Handler(BaseHTTPRequestHandler):
        def log_message(self, *args):  # silence request logging in tests
            pass

        def _reply(self, code: int, payload: dict) -> None:
            body = json.dumps(payload).encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _read_json(self) -> dict:
            length = int(self.headers.get("Content-Length", 0))
            return json.loads(self.rfile.read(length) or b"{}")

        def do_GET(self):
            if self.path == "/status":
                self._reply(200, service.status())
            else:
                self._reply(404, {"error": f"unknown path {self.path}"})

        def do_POST(self):
            try:
                if self.path == "/estimate":
                    data = self._read_json()
                    query = range_from_dict(data["query"])
                    self._reply(200, {"selectivity": service.estimate(query)})
                elif self.path == "/feedback":
                    data = self._read_json()
                    query = range_from_dict(data["query"])
                    result = service.feedback(query, float(data["selectivity"]))
                    self._reply(200, result)
                elif self.path == "/retrain":
                    self._reply(200, service.retrain())
                else:
                    self._reply(404, {"error": f"unknown path {self.path}"})
            except (KeyError, ValueError, TypeError) as exc:
                self._reply(400, {"error": str(exc)})
            except RuntimeError as exc:
                self._reply(409, {"error": str(exc)})

    return Handler


def serve(
    service: EstimatorService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Start the HTTP server on a background thread; returns the server.

    ``port=0`` picks a free port (read it from ``server.server_address``).
    Call ``server.shutdown()`` to stop.
    """
    server = ThreadingHTTPServer((host, port), _make_handler(service))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
