"""A fault-tolerant selectivity-estimation service (stdlib HTTP only).

The deployment shape for a query-driven estimator: a database's optimizer
asks a sidecar service for estimates, and streams back true selectivities
observed during execution as feedback.  The service accumulates feedback,
retrains on demand (or automatically every ``retrain_every`` feedbacks),
and tracks workload drift with :class:`repro.eval.drift.DriftDetector`.

Because the feedback loop runs unattended, every failure mode degrades
instead of crashing (see ``docs/robustness.md``):

* **Last-good-model serving** — a failed retrain never touches the
  currently served model; each successful retrain atomically installs a
  new *generation*.
* **Circuit breaker** — after ``breaker_threshold`` consecutive retrain
  failures the breaker opens and retraining is suspended for
  ``breaker_cooldown`` seconds, then probed half-open.  Estimates keep
  flowing from the last good generation throughout.
* **Input sanitization** — feedback is screened under a configurable
  policy (``raise`` / ``drop`` / ``clamp``); quarantine counts are
  surfaced, not swallowed.
* **Bounded feedback buffer** — a recency ring plus reservoir-sampled
  history (:class:`repro.robustness.FeedbackBuffer`), so memory is
  bounded over month-long runs.

And because it runs unattended, it is also *instrumented* end to end
(see ``docs/observability.md``): every API call and HTTP request feeds
counters and latency histograms in a
:class:`~repro.observability.MetricsRegistry`, retrains run under
tracing spans, and the registry is exported in Prometheus text format.

The service also has a durable *lifecycle* when constructed with
``snapshot_dir=...``: every successful retrain persists the new
generation as a versioned artifact (atomic tmp+rename, see
:mod:`repro.persistence`), startup restores the last-good generation
instead of cold-fitting, and ``snapshot()`` / ``restore()`` expose the
same operations on demand.  See ``docs/persistence.md``.

Endpoints (JSON in/out; ranges use the tagged encoding of
:mod:`repro.data.io`).  The versioned surface lives under ``/v1/``; the
original unversioned paths still work as thin aliases that answer with a
``Deprecation: true`` response header:

* ``POST /v1/estimate``  ``{"query": {...}}`` → ``{"selectivity": 0.42}``
* ``POST /v1/predict``   ``{"queries": [{...}, ...]}`` →
  ``{"selectivities": [0.42, ...], "count": 2}`` — the batch path: one
  vectorised ``predict_many`` call for all cache misses, results cached
  in a generation-keyed LRU so repeated optimizer probes are free.
* ``POST /v1/feedback``  ``{"query": {...}, "selectivity": 0.37}`` →
  ``{"accepted": true, "pending": 12, "drift": false}``
* ``POST /v1/retrain``   → ``{"trained_on": 200, "model_size": 800, ...}``
* ``POST /v1/update``    → ``{"incremental": true, "rows_appended": 25,
  ...}`` — the incremental fast path: absorb only the pending feedback
  via ``partial_fit`` (warm-started solve, appended design rows), with a
  full retrain as automatic fallback (see ``docs/online_learning.md``).
* ``POST /v1/snapshot``  → ``{"path": ..., "generation": 3, ...}`` —
  persist the serving generation to the snapshot directory now.
* ``POST /v1/restore``   ``{"path": optional}`` → install a persisted
  artifact as a new serving generation (latest snapshot by default).
* ``GET  /v1/status``    → model / generation / breaker / snapshot summary
* ``GET  /health``       → liveness + degradation probe, always HTTP 200
  while the process is up; the body distinguishes ``{"status": "ok"}``
  from ``{"status": "degraded", "reasons": [...]}`` (open retrain
  breaker, serving generation stale behind the shared snapshot store) so
  load balancers and the :mod:`repro.serving` supervisor can tell
  alive-but-unhealthy from healthy.  Unversioned on purpose (probes
  should not chase API versions).
* ``GET  /metrics``      → Prometheus text exposition of every metric
  (service, HTTP, solver-ladder and kernel layers); unversioned, as
  scrape configs expect.

Errors come back as structured JSON bodies ``{"error": ..., "type": ...}``
with the status from the :mod:`repro.robustness.errors` taxonomy — never
a traceback page or a hung connection.

Programmatic use goes through :class:`EstimatorService` directly; the HTTP
layer (:func:`serve`) is a thin adapter over it.  Access logging is
opt-in (``serve(..., access_log=True)``) and routes through the
structured logger (``repro.http.access``) instead of the stdlib's bare
stderr lines, so ``repro serve --log-json`` yields one JSON object per
request.
"""

from __future__ import annotations

import copy
import json
import logging
import threading
import time
import uuid
from collections import OrderedDict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.core.estimator import SelectivityEstimator
from repro.data.io import range_from_dict, range_to_dict
from repro.eval.drift import DriftDetector
from repro.geometry.ranges import Range
from repro.observability import (
    MetricsRegistry,
    bind_request_id,
    default_registry,
    get_logger,
    log_event,
    snapshot_registries,
)
from repro.observability.tracing import span
from repro.persistence.artifact import load_manifest, load_model
from repro.persistence.snapshots import SnapshotStore
from repro.robustness import CircuitBreaker, FeedbackBuffer
from repro.robustness.chaos import active as _active_chaos
from repro.robustness.deadline import Deadline
from repro.robustness.errors import (
    DataValidationError,
    ModelUnavailableError,
    PersistenceError,
    ReproError,
    SolverConvergenceError,
    TrainingTimeoutError,
)
from repro.robustness.sanitize import (
    SANITIZE_POLICIES,
    SanitizationReport,
    sanitize_training_data,
)

__all__ = [
    "EstimatorService",
    "make_server",
    "serve",
    "DEADLINE_HEADER",
    "REQUEST_ID_HEADER",
]

_BREAKER_CODES = {"closed": 0.0, "half_open": 1.0, "open": 2.0}


class _ServiceMetrics:
    """Get-or-create handles for every service-layer metric.

    Bound to one registry; two services sharing a registry share series
    (Prometheus-style process totals).  Names and meanings are catalogued
    in ``docs/observability.md``.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        counter, gauge, histogram = registry.counter, registry.gauge, registry.histogram
        self.requests = counter(
            "repro_service_requests_total",
            "Service API calls by method",
            labels=("method",),
        )
        self.errors = counter(
            "repro_service_errors_total",
            "Service API calls that raised, by method and error type",
            labels=("method", "type"),
        )
        self.request_seconds = histogram(
            "repro_service_request_seconds",
            "Service API call latency in seconds",
            labels=("method",),
        )
        self.queries = counter(
            "repro_service_queries_total",
            "Individual queries received via estimate/estimate_many",
        )
        self.cache_hits = counter(
            "repro_prediction_cache_hits_total",
            "Prediction-cache hits on the batch estimation path",
        )
        self.cache_misses = counter(
            "repro_prediction_cache_misses_total",
            "Prediction-cache misses on the batch estimation path",
        )
        self.feedback_accepted = counter(
            "repro_feedback_accepted_total",
            "Feedback pairs accepted into the buffer",
        )
        self.feedback_quarantined = counter(
            "repro_feedback_quarantined_total",
            "Feedback pairs rejected/quarantined by sanitization",
        )
        self.retrain = counter(
            "repro_retrain_total",
            "Completed retrain attempts by outcome",
            labels=("outcome",),
        )
        self.retrain_seconds = histogram(
            "repro_retrain_seconds",
            "Wall time of successful retrains in seconds",
        )
        self.update = counter(
            "repro_update_total",
            "Incremental update attempts by outcome",
            labels=("outcome",),
        )
        self.update_seconds = histogram(
            "repro_update_seconds",
            "Wall time of successful incremental updates in seconds",
        )
        self.update_rows = counter(
            "repro_update_rows_appended_total",
            "Design-matrix rows appended by incremental updates",
        )
        self.update_splits = counter(
            "repro_update_leaves_split_total",
            "Partition leaves/buckets added by incremental updates",
        )
        self.update_fallback = counter(
            "repro_update_fallback_total",
            "Incremental updates that fell back to a full retrain, by reason",
            labels=("reason",),
        )
        self.generation = gauge(
            "repro_model_generation", "Currently served model generation"
        )
        self.model_size = gauge(
            "repro_model_size", "Buckets/components of the serving model"
        )
        self.pending = gauge(
            "repro_feedback_pending", "Feedback accepted since the last retrain"
        )
        self.drift_alarm = gauge(
            "repro_drift_alarm", "1 while the workload-drift alarm is latched"
        )
        self.drift_statistic = gauge(
            "repro_drift_statistic", "Current CUSUM drift statistic"
        )
        self.breaker_state = gauge(
            "repro_breaker_state",
            "Circuit-breaker state (0 closed, 1 half-open, 2 open)",
        )
        self.snapshots = counter(
            "repro_snapshot_total",
            "Snapshot persist attempts by outcome",
            labels=("outcome",),
        )
        self.snapshot_generation = gauge(
            "repro_snapshot_generation",
            "Generation of the newest persisted snapshot (0 = none)",
        )
        self.snapshot_timestamp = gauge(
            "repro_snapshot_timestamp_seconds",
            "Unix time the newest snapshot was written (0 = none)",
        )
        self.snapshot_age = gauge(
            "repro_snapshot_age_seconds",
            "Seconds since the newest snapshot was written (0 = none)",
        )


class EstimatorService:
    """Thread-safe wrapper: estimate / collect feedback / retrain / drift.

    Parameters
    ----------
    estimator_factory:
        Zero-argument callable returning a fresh estimator; called on
        every (re)train so state never leaks between generations.
    retrain_every:
        Automatically retrain after this many new feedbacks (None = only
        on explicit ``retrain()``).  Auto-retrain failures are absorbed
        by the circuit breaker; they never propagate to ``feedback()``.
    min_feedback:
        Minimum accumulated feedback before the first training.
    drift_holdout:
        Fraction of feedback (most recent) held out to baseline the drift
        detector after each retrain.
    sanitize_policy:
        ``"raise"`` (default, strict — invalid feedback raises
        :class:`DataValidationError`), ``"drop"`` (quarantine and keep
        serving) or ``"clamp"`` (repair what is repairable, quarantine
        the rest).
    feedback_capacity:
        Bound on retained feedback pairs (None = unbounded).  See
        :class:`repro.robustness.FeedbackBuffer`.
    breaker_threshold / breaker_cooldown:
        Consecutive retrain failures that open the circuit breaker, and
        the open-state cooldown in seconds before a half-open probe.
    retrain_timeout:
        Wall-clock budget for one retrain in seconds (None = unlimited);
        exceeding it counts as a retrain failure
        (:class:`TrainingTimeoutError`).
    incremental_updates:
        When True, the automatic (re)train triggered by ``retrain_every``
        prefers the :meth:`update` fast path — absorbing only the
        pending feedback into a copy of the serving model via
        ``partial_fit`` instead of refitting on the whole history — with
        a full retrain as the fallback whenever the model cannot update
        incrementally.
    update_residual_budget:
        Residual ceiling for accepting an incremental update: when the
        warm solve's residual exceeds it, :meth:`update` falls back to a
        full retrain (guarding against slow quality drift across many
        delta refinements).  ``None`` accepts any residual.
    prediction_cache_size:
        Capacity of the generation-keyed LRU cache fronting the batch
        prediction path (0 disables caching).  Entries are keyed by
        (model generation, canonical query JSON), so a retrain implicitly
        invalidates everything — the cache is also cleared eagerly on each
        successful retrain to free memory.
    snapshot_dir:
        Directory of persisted model generations (None = no persistence).
        When set: every successful retrain writes its generation as an
        artifact (atomically; a persist failure never fails the retrain),
        and construction *restores the newest readable generation* instead
        of starting cold — a restarted service serves immediately, without
        refitting.  ``snapshot()``/``restore()`` give explicit control.
    snapshot_keep:
        Generations retained in ``snapshot_dir`` (older artifacts are
        pruned after each save; None keeps all).
    health_stale_after:
        ``/health`` reports ``degraded`` when the shared snapshot store
        holds a generation at least this many ahead of the one this
        service serves (a worker that missed rolling reloads).  ``None``
        disables the staleness check.
    registry:
        :class:`~repro.observability.MetricsRegistry` receiving this
        service's metrics (default: the process-global registry, so
        ``GET /metrics`` also exposes the solver and kernel layers).
        Pass a fresh registry for isolated counters in tests.
    """

    def __init__(
        self,
        estimator_factory,
        retrain_every: int | None = None,
        min_feedback: int = 20,
        drift_holdout: float = 0.25,
        sanitize_policy: str = "raise",
        feedback_capacity: int | None = None,
        breaker_threshold: int = 3,
        breaker_cooldown: float = 30.0,
        retrain_timeout: float | None = None,
        incremental_updates: bool = False,
        update_residual_budget: float | None = None,
        prediction_cache_size: int = 4096,
        snapshot_dir: str | None = None,
        snapshot_keep: int | None = 5,
        health_stale_after: int | None = 2,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
        _clock=time.monotonic,
    ):
        if retrain_every is not None and retrain_every < 1:
            raise ValueError(f"retrain_every must be >= 1, got {retrain_every}")
        if min_feedback < 2:
            raise ValueError(f"min_feedback must be >= 2, got {min_feedback}")
        if not 0.0 < drift_holdout < 1.0:
            raise ValueError(f"drift_holdout must be in (0, 1), got {drift_holdout}")
        if sanitize_policy not in SANITIZE_POLICIES:
            raise ValueError(
                f"sanitize_policy must be one of {SANITIZE_POLICIES}, got {sanitize_policy!r}"
            )
        if retrain_timeout is not None and retrain_timeout <= 0:
            raise ValueError(f"retrain_timeout must be positive, got {retrain_timeout}")
        if update_residual_budget is not None and update_residual_budget <= 0:
            raise ValueError(
                f"update_residual_budget must be positive, got {update_residual_budget}"
            )
        if prediction_cache_size < 0:
            raise ValueError(
                f"prediction_cache_size must be >= 0, got {prediction_cache_size}"
            )
        if health_stale_after is not None and health_stale_after < 1:
            raise ValueError(
                f"health_stale_after must be >= 1 or None, got {health_stale_after}"
            )
        self._factory = estimator_factory
        self.retrain_every = retrain_every
        self.min_feedback = int(min_feedback)
        self.drift_holdout = float(drift_holdout)
        self.sanitize_policy = sanitize_policy
        self.retrain_timeout = retrain_timeout
        self.incremental_updates = bool(incremental_updates)
        self.update_residual_budget = update_residual_budget
        self.registry = registry if registry is not None else default_registry()
        self._metrics = _ServiceMetrics(self.registry)
        self._lock = threading.Lock()
        self._retrain_lock = threading.Lock()
        self._buffer = FeedbackBuffer(capacity=feedback_capacity, seed=seed)
        self._breaker = CircuitBreaker(
            failure_threshold=breaker_threshold,
            cooldown_seconds=breaker_cooldown,
            clock=_clock,
        )
        self._model: SelectivityEstimator | None = None
        self._generation = 0
        self._since_train = 0
        self._trained_on = 0
        self._detector: DriftDetector | None = None
        self._drift_flag = False
        self._quarantine = SanitizationReport(policy=sanitize_policy)
        self._last_error: str | None = None
        self._last_retrain_seconds: float | None = None
        self._last_update: dict | None = None
        self._cache_capacity = int(prediction_cache_size)
        self._prediction_cache: OrderedDict[tuple[int, str], float] = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0
        self._snapshots = (
            SnapshotStore(snapshot_dir, keep=snapshot_keep)
            if snapshot_dir is not None
            else None
        )
        self._trained_pairs: tuple[list, list] | None = None
        self._restored_from: str | None = None
        self._snapshot_info: dict | None = None
        self.health_stale_after = health_stale_after
        #: Store generation (gen-%08d number) backing the serving model;
        #: 0 until a snapshot is written or restored.  Compared against
        #: the store's newest generation for /health staleness.
        self._store_generation = 0
        if self._snapshots is not None:
            self._restore_on_startup()

    # -- programmatic API ------------------------------------------------

    def estimate(self, query) -> float:
        """Estimated selectivity from the last good model generation.

        Raises :class:`ModelUnavailableError` only before the *first*
        successful training — once a generation exists, estimates keep
        flowing regardless of later retrain failures.
        """
        metrics = self._metrics
        metrics.requests.inc(method="estimate")
        metrics.queries.inc()
        try:
            with metrics.request_seconds.time(method="estimate"):
                with self._lock:
                    if self._model is None:
                        raise ModelUnavailableError(
                            f"no model yet: need >= {self.min_feedback} feedbacks, "
                            f"have {len(self._buffer)}"
                        )
                    return self._model.predict(query)
        except Exception as exc:
            metrics.errors.inc(method="estimate", type=type(exc).__name__)
            raise

    def estimate_many(self, queries) -> list[float]:
        """Batch estimates from the last good generation, LRU-cached.

        Cache lookups happen under the state lock; the vectorised
        ``predict_many`` call for the misses runs *outside* it (fitted
        models are immutable — retrains swap in a whole new object), so a
        large batch never blocks feedback ingestion or retraining.
        """
        metrics = self._metrics
        metrics.requests.inc(method="estimate_many")
        try:
            with metrics.request_seconds.time(method="estimate_many"):
                return self._estimate_many(queries)
        except Exception as exc:
            metrics.errors.inc(method="estimate_many", type=type(exc).__name__)
            raise

    def _estimate_many(self, queries) -> list[float]:
        queries = list(queries)
        hits = misses = 0
        with self._lock:
            if self._model is None:
                raise ModelUnavailableError(
                    f"no model yet: need >= {self.min_feedback} feedbacks, "
                    f"have {len(self._buffer)}"
                )
            model = self._model
            generation = self._generation
            keys = [self._cache_key(generation, q) for q in queries]
            results: list[float | None] = [None] * len(queries)
            miss_idx: list[int] = []
            for i, key in enumerate(keys):
                cached = self._prediction_cache.get(key) if key is not None else None
                if cached is not None:
                    self._prediction_cache.move_to_end(key)
                    self._cache_hits += 1
                    hits += 1
                    results[i] = cached
                else:
                    self._cache_misses += 1
                    misses += 1
                    miss_idx.append(i)
            # All three counters move in the same lock hold so a
            # metrics_snapshot() (heartbeat piggyback) can never observe
            # queries without their hit/miss classification — the fleet
            # identity `hits + misses == queries` stays exact even when
            # a snapshot lands mid-request.
            self._metrics.queries.inc(len(queries))
            if hits:
                self._metrics.cache_hits.inc(hits)
            if misses:
                self._metrics.cache_misses.inc(misses)
        if miss_idx:
            predicted = model.predict_many([queries[i] for i in miss_idx])
            with self._lock:
                for i, value in zip(miss_idx, predicted):
                    results[i] = float(value)
                    key = keys[i]
                    if key is not None and self._cache_capacity > 0:
                        self._prediction_cache[key] = float(value)
                        self._prediction_cache.move_to_end(key)
                        while len(self._prediction_cache) > self._cache_capacity:
                            self._prediction_cache.popitem(last=False)
        return results

    @staticmethod
    def _cache_key(generation: int, query) -> tuple[int, str] | None:
        """Canonical cache key; None (uncacheable) for unserialisable ranges."""
        try:
            return generation, json.dumps(range_to_dict(query), sort_keys=True)
        except (TypeError, ValueError, KeyError):
            return None

    def feedback(self, query, selectivity: float) -> dict:
        """Record one observed (query, true selectivity) pair.

        Under the ``drop``/``clamp`` policies an invalid pair is
        quarantined (``accepted: False``) instead of raising.

        The response is a snapshot taken in the *same* locked section as
        the buffer append, so concurrent feedback threads each see their
        own consistent ``pending``/``drift`` state — never another
        thread's post-retrain reset.
        """
        metrics = self._metrics
        metrics.requests.inc(method="feedback")
        try:
            with metrics.request_seconds.time(method="feedback"):
                response, auto, drift_statistic = self._ingest_feedback(
                    query, selectivity
                )
        except Exception as exc:
            metrics.errors.inc(method="feedback", type=type(exc).__name__)
            raise
        if response["accepted"]:
            metrics.feedback_accepted.inc()
        else:
            metrics.feedback_quarantined.inc()
        metrics.pending.set(response["pending"])
        metrics.drift_alarm.set(1.0 if response["drift"] else 0.0)
        metrics.drift_statistic.set(drift_statistic)
        if auto:
            self._auto_retrain()
        return response

    def _ingest_feedback(self, query, selectivity: float):
        """Screen, append and snapshot the response under one lock hold."""
        accepted, query, selectivity = self._screen_pair(query, selectivity)
        with self._lock:
            if accepted:
                if self._model is not None and self._detector is not None:
                    estimate = self._model.predict(query)
                    if self._detector.update(estimate, selectivity):
                        self._drift_flag = True
                self._buffer.append(query, selectivity)
                self._since_train += 1
            auto = (
                accepted
                and self.retrain_every is not None
                and self._since_train >= self.retrain_every
                and len(self._buffer) >= self.min_feedback
            )
            response = {
                "accepted": accepted,
                "pending": self._since_train,
                "drift": self._drift_flag,
                "quarantined_total": self._quarantine.quarantined,
            }
            drift_statistic = self._detector.statistic if self._detector else 0.0
        return response, auto, drift_statistic

    def retrain(self) -> dict:
        """Fit a fresh model generation on the buffered feedback.

        Atomic with respect to serving: the new model and drift baseline
        are built completely off to the side and swapped in under the
        lock only on success.  A failure leaves the previous generation
        serving, records a breaker failure, and re-raises.

        Raises
        ------
        ModelUnavailableError
            Not enough feedback, or the circuit breaker is open.
        """
        metrics = self._metrics
        metrics.requests.inc(method="retrain")
        try:
            with metrics.request_seconds.time(method="retrain"):
                return self._retrain()
        except Exception as exc:
            metrics.errors.inc(method="retrain", type=type(exc).__name__)
            raise

    def _retrain(self) -> dict:
        metrics = self._metrics
        with self._lock:
            queries, labels = self._buffer.snapshot()
            if len(queries) < self.min_feedback:
                raise ModelUnavailableError(
                    f"need >= {self.min_feedback} feedbacks to train, "
                    f"have {len(queries)}"
                )
            if not self._breaker.allow():
                metrics.breaker_state.set(_BREAKER_CODES[self._breaker.state])
                raise ModelUnavailableError(
                    "retraining suspended: circuit breaker open after "
                    f"{self._breaker.consecutive_failures} consecutive failures "
                    f"(retry in {self._breaker.cooldown_remaining():.1f}s)"
                )
        with self._retrain_lock:
            try:
                with span("service/retrain", feedback=len(queries)) as retrain_span:
                    built = self._train_generation(queries, labels)
                    retrain_span.annotate(
                        trained_on=built[1], model_size=built[0].model_size
                    )
            except Exception as exc:
                with self._lock:
                    self._breaker.record_failure()
                    self._last_error = f"{type(exc).__name__}: {exc}"
                    metrics.breaker_state.set(_BREAKER_CODES[self._breaker.state])
                metrics.retrain.inc(outcome="failure")
                log_event(
                    get_logger("service"),
                    "retrain_failed",
                    level=logging.WARNING,
                    error=f"{type(exc).__name__}: {exc}",
                )
                raise
        model, trained_on, detector, retrain_quarantined, elapsed = built
        with self._lock:
            self._breaker.record_success()
            self._model = model
            self._prediction_cache.clear()  # old generation's entries are dead
            self._generation += 1
            self._trained_on = trained_on
            self._since_train = 0
            self._drift_flag = False
            self._detector = detector
            self._last_error = None
            self._last_retrain_seconds = elapsed
            self._trained_pairs = (queries, labels)
            generation = self._generation
            metrics.breaker_state.set(_BREAKER_CODES[self._breaker.state])
            result = {
                "trained_on": self._trained_on,
                "model_size": model.model_size,
                "generation": generation,
                "quarantined": retrain_quarantined,
                "seconds": round(elapsed, 4),
            }
        metrics.retrain.inc(outcome="success")
        metrics.retrain_seconds.observe(elapsed)
        metrics.generation.set(generation)
        metrics.model_size.set(model.model_size)
        metrics.pending.set(0.0)
        metrics.drift_alarm.set(0.0)
        metrics.drift_statistic.set(0.0)
        log_event(
            get_logger("service"),
            "retrain_succeeded",
            generation=generation,
            trained_on=trained_on,
            model_size=model.model_size,
            seconds=round(elapsed, 4),
        )
        self._persist_generation(model, generation, queries, labels)
        return result

    def update(self) -> dict:
        """Absorb the pending feedback into the serving model incrementally.

        The fast path next to :meth:`retrain`: instead of refitting a
        fresh generation on the whole buffered history, the pending
        feedback batch refines a *copy* of the serving model via its
        ``partial_fit`` — appending design-matrix rows, splitting only
        the implicated partition leaves, and warm-starting the solver
        from the previous weights — and the copy is swapped in atomically
        as a new generation (the prediction cache invalidates with it).

        Falls back to a full :meth:`retrain` — counted per reason in
        ``repro_update_fallback_total`` — whenever the incremental path
        is unavailable or unacceptable: no generation yet, the estimator
        has no ``partial_fit``, fit-time state is missing (a model
        restored from a snapshot), the pending batch aged out of the
        feedback ring, the update itself failed, or the solve residual
        exceeded ``update_residual_budget``.
        """
        metrics = self._metrics
        metrics.requests.inc(method="update")
        try:
            with metrics.request_seconds.time(method="update"):
                return self._update()
        except Exception as exc:
            metrics.errors.inc(method="update", type=type(exc).__name__)
            raise

    def _fallback_retrain(self, reason: str) -> dict:
        """Full refit on behalf of a declined/failed incremental update."""
        self._metrics.update_fallback.inc(reason=reason)
        self._metrics.update.inc(outcome="fallback")
        log_event(
            get_logger("service"),
            "update_fell_back",
            reason=reason,
        )
        result = self._retrain()
        result["incremental"] = False
        result["fallback"] = reason
        with self._lock:
            self._last_update = dict(result)
        return result

    def _update(self) -> dict:
        metrics = self._metrics
        with self._lock:
            if not self._breaker.allow():
                metrics.breaker_state.set(_BREAKER_CODES[self._breaker.state])
                raise ModelUnavailableError(
                    "updating suspended: circuit breaker open after "
                    f"{self._breaker.consecutive_failures} consecutive failures "
                    f"(retry in {self._breaker.cooldown_remaining():.1f}s)"
                )
            model = self._model
            pending = self._since_train
            batch = self._buffer.recent(pending) if pending else ([], np.zeros(0))
        if model is None:
            return self._fallback_retrain("no_model")
        if not hasattr(model, "partial_fit"):
            return self._fallback_retrain("unsupported")
        if pending == 0:
            raise ModelUnavailableError("no pending feedback to absorb")
        if batch is None:
            # The batch aged out of the recency ring into the downsampled
            # reservoir; the exact delta is gone, so refit on the union.
            return self._fallback_retrain("batch_evicted")
        new_queries, new_labels = batch
        fallback_reason: str | None = None
        with self._retrain_lock:
            start = time.monotonic()
            try:
                with span("service/update", feedback=pending) as update_span:
                    working = copy.deepcopy(model)
                    working.partial_fit(new_queries, new_labels, warm_start=True)
                    report = getattr(working, "update_report_", None)
                    update_span.annotate(
                        rows_appended=pending, model_size=working.model_size
                    )
            except RuntimeError:
                # partial_fit without fit-time state (e.g. the serving
                # model was restored from a snapshot artifact).
                fallback_reason = "no_fit_state"
            except Exception as exc:
                with self._lock:
                    self._last_error = f"{type(exc).__name__}: {exc}"
                log_event(
                    get_logger("service"),
                    "update_failed",
                    level=logging.WARNING,
                    error=f"{type(exc).__name__}: {exc}",
                )
                fallback_reason = "error"
            else:
                if (
                    self.update_residual_budget is not None
                    and report is not None
                    and report.residual > self.update_residual_budget
                ):
                    fallback_reason = "residual_budget"
            elapsed = time.monotonic() - start
        if fallback_reason is not None:
            return self._fallback_retrain(fallback_reason)
        baseline = (
            working.predict_many(new_queries) - np.asarray(new_labels, dtype=float)
        ) ** 2
        detector = DriftDetector(baseline) if baseline.size >= 2 else None
        with self._lock:
            self._breaker.record_success()
            self._model = working
            self._prediction_cache.clear()  # old generation's entries are dead
            self._generation += 1
            base_generation = self._generation - 1
            self._trained_on = (
                report.rows_total if report is not None else self._trained_on + pending
            )
            # Feedback that raced in during the update stays pending.
            self._since_train = max(0, self._since_train - pending)
            self._drift_flag = False
            self._detector = detector
            self._last_error = None
            queries, labels = self._buffer.snapshot()
            self._trained_pairs = (queries, labels)
            generation = self._generation
            still_pending = self._since_train
            metrics.breaker_state.set(_BREAKER_CODES[self._breaker.state])
            result = {
                "incremental": True,
                "generation": generation,
                "base_generation": base_generation,
                "rows_appended": pending,
                "trained_on": self._trained_on,
                "model_size": working.model_size,
                "seconds": round(elapsed, 4),
                "update": report.to_dict() if report is not None else None,
            }
            self._last_update = dict(result)
        metrics.update.inc(outcome="success")
        metrics.update_seconds.observe(elapsed)
        metrics.update_rows.inc(pending)
        if report is not None and report.leaves_split > 0:
            metrics.update_splits.inc(report.leaves_split)
        metrics.generation.set(generation)
        metrics.model_size.set(working.model_size)
        metrics.pending.set(float(still_pending))
        metrics.drift_alarm.set(0.0)
        metrics.drift_statistic.set(0.0)
        log_event(
            get_logger("service"),
            "update_succeeded",
            generation=generation,
            rows_appended=pending,
            model_size=working.model_size,
            seconds=round(elapsed, 4),
        )
        self._persist_generation(
            working,
            generation,
            queries,
            labels,
            metadata={
                "incremental": True,
                "base_generation": base_generation,
                "rows_appended": pending,
                "update_seconds": elapsed,
            },
        )
        return result

    def snapshot(self) -> dict:
        """Persist the serving generation to the snapshot directory now.

        Raises :class:`PersistenceError` without a ``snapshot_dir`` and
        :class:`ModelUnavailableError` before the first generation exists.
        """
        metrics = self._metrics
        metrics.requests.inc(method="snapshot")
        try:
            with metrics.request_seconds.time(method="snapshot"):
                if self._snapshots is None:
                    raise PersistenceError(
                        "no snapshot directory configured "
                        "(EstimatorService(snapshot_dir=...))"
                    )
                with self._lock:
                    model = self._model
                    generation = self._generation
                    pairs = self._trained_pairs
                if model is None:
                    raise ModelUnavailableError("no model generation to snapshot")
                path = self._snapshots.save(
                    model, generation, training=pairs
                )
                self._note_snapshot(generation, str(path))
                return {
                    "path": str(path),
                    "generation": generation,
                    "model_size": model.model_size,
                }
        except Exception as exc:
            metrics.errors.inc(method="snapshot", type=type(exc).__name__)
            raise

    def restore(self, path: str | None = None) -> dict:
        """Install a persisted artifact as a *new* serving generation.

        Restores the newest readable snapshot by default, or the exact
        artifact at ``path``.  The installed model gets a fresh generation
        number (so generation-keyed prediction-cache entries can never
        alias the replaced model) and the drift baseline resets — the
        restored artifact carries no holdout.
        """
        metrics = self._metrics
        metrics.requests.inc(method="restore")
        try:
            with metrics.request_seconds.time(method="restore"):
                if path is None:
                    if self._snapshots is None:
                        raise PersistenceError(
                            "no snapshot directory configured "
                            "(EstimatorService(snapshot_dir=...))"
                        )
                    model, manifest, source = self._snapshots.restore_latest()
                    source = str(source)
                else:
                    model = load_model(path)
                    manifest = load_manifest(path)
                    source = str(path)
                fit_meta = manifest.get("fit", {})
                with self._lock:
                    self._model = model
                    self._generation += 1
                    self._prediction_cache.clear()
                    self._trained_on = int(fit_meta.get("n_train", 0))
                    self._trained_pairs = None
                    self._detector = None
                    self._drift_flag = False
                    self._restored_from = source
                    self._store_generation = int(fit_meta.get("generation", 0))
                    generation = self._generation
                metrics.generation.set(generation)
                metrics.model_size.set(model.model_size)
                metrics.drift_alarm.set(0.0)
                metrics.drift_statistic.set(0.0)
                log_event(
                    get_logger("service"),
                    "model_restored",
                    source=source,
                    generation=generation,
                    estimator=manifest.get("estimator"),
                    model_size=model.model_size,
                )
                return {
                    "restored_from": source,
                    "generation": generation,
                    "estimator": manifest.get("estimator"),
                    "model_size": model.model_size,
                    # True when the artifact was written by the update()
                    # fast path (a delta snapshot); rolling reloaders use
                    # this to count delta pickups separately.
                    "incremental": bool(fit_meta.get("incremental", False)),
                }
        except Exception as exc:
            metrics.errors.inc(method="restore", type=type(exc).__name__)
            raise

    def _restore_on_startup(self) -> None:
        """Warm-start from the newest readable snapshot, if any.

        An empty snapshot directory is a normal cold start; a directory
        with only unreadable artifacts logs a warning and starts cold —
        a broken snapshot must never prevent the service from coming up.
        """
        if not self._snapshots.generations():
            return
        try:
            model, manifest, source = self._snapshots.restore_latest()
        except PersistenceError as exc:
            log_event(
                get_logger("service"),
                "startup_restore_failed",
                level=logging.WARNING,
                error=str(exc),
            )
            return
        fit_meta = manifest.get("fit", {})
        generation = int(fit_meta.get("generation", 1))
        self._model = model
        self._generation = generation
        self._trained_on = int(fit_meta.get("n_train", 0))
        self._restored_from = str(source)
        self._store_generation = generation
        saved_at = fit_meta.get("saved_at")
        self._snapshot_info = {
            "generation": generation,
            "saved_at": saved_at,
            "path": str(source),
        }
        metrics = self._metrics
        metrics.generation.set(generation)
        metrics.model_size.set(model.model_size)
        metrics.snapshot_generation.set(generation)
        if saved_at is not None:
            metrics.snapshot_timestamp.set(float(saved_at))
        log_event(
            get_logger("service"),
            "startup_restored",
            source=str(source),
            generation=generation,
            estimator=manifest.get("estimator"),
            model_size=model.model_size,
        )

    def _persist_generation(
        self, model, generation, queries, labels, metadata: dict | None = None
    ) -> None:
        """Best-effort snapshot of a freshly trained generation.

        A persist failure is counted and logged but never fails the
        retrain that produced the model — serving the new generation
        matters more than remembering it.  ``metadata`` overrides the
        default retrain stamp (the incremental-update path uses it to
        mark delta snapshots).
        """
        if self._snapshots is None:
            return
        try:
            path = self._snapshots.save(
                model,
                generation,
                training=(queries, labels),
                metadata=(
                    metadata
                    if metadata is not None
                    else {"retrain_seconds": self._last_retrain_seconds}
                ),
            )
        except Exception as exc:
            self._metrics.snapshots.inc(outcome="failure")
            log_event(
                get_logger("service"),
                "snapshot_failed",
                level=logging.WARNING,
                generation=generation,
                error=f"{type(exc).__name__}: {exc}",
            )
            return
        self._note_snapshot(generation, str(path))

    def _note_snapshot(self, generation: int, path: str) -> None:
        saved_at = time.time()
        with self._lock:
            self._snapshot_info = {
                "generation": generation,
                "saved_at": saved_at,
                "path": path,
            }
            self._store_generation = max(self._store_generation, generation)
        metrics = self._metrics
        metrics.snapshots.inc(outcome="success")
        metrics.snapshot_generation.set(generation)
        metrics.snapshot_timestamp.set(saved_at)
        metrics.snapshot_age.set(0.0)
        log_event(
            get_logger("service"),
            "snapshot_written",
            generation=generation,
            path=path,
        )

    def _refresh_snapshot_gauges(self) -> None:
        """Recompute the snapshot-age gauge from the last write time."""
        with self._lock:
            info = self._snapshot_info
        if info and info.get("saved_at"):
            self._metrics.snapshot_age.set(
                max(0.0, time.time() - float(info["saved_at"]))
            )

    @property
    def snapshot_store(self) -> SnapshotStore | None:
        """The shared snapshot store backing this service (or None)."""
        return self._snapshots

    def metrics_snapshot(self) -> dict:
        """Mergeable snapshot of this service's registries (see
        :mod:`repro.observability.aggregate`).

        Taken under the service state lock, so the query/hit/miss
        counters are captured between requests, never mid-update — the
        consistency the fleet aggregator's ``hits + misses == queries``
        identity relies on.  The service registry wins metric-name
        collisions with the process-global one, mirroring ``/metrics``.
        """
        with self._lock:
            return snapshot_registries(self.registry, default_registry())

    @property
    def store_generation(self) -> int:
        """Store generation of the serving model (0 = never persisted)."""
        with self._lock:
            return self._store_generation

    def health(self) -> dict:
        """Cheap liveness/degradation summary for ``/health`` probes.

        Always answers (HTTP layer maps this to a constant 200 — an
        *unhealthy* worker is still *alive*); the body distinguishes:

        * ``ok`` — serving normally.
        * ``degraded`` with ``reasons`` — one or more of:
          ``breaker_open`` (retraining suspended after consecutive
          failures; estimates still flow from the last good generation)
          and ``stale_generation`` (the shared snapshot store holds a
          generation ≥ ``health_stale_after`` ahead of the one served —
          this worker is missing rolling reloads).

        Load balancers keep routing on 200 but can weight away from
        degraded workers; the :mod:`repro.serving` supervisor uses the
        same signal to distinguish alive-but-unhealthy from healthy.
        """
        with self._lock:
            breaker_state = self._breaker.state
            trained = self._model is not None
            generation = self._generation
            store_generation = self._store_generation
        reasons = []
        if breaker_state == "open":
            reasons.append("breaker_open")
        snapshot_lag = None
        if self._snapshots is not None and self.health_stale_after is not None:
            latest = self._snapshots.latest_generation()
            if latest is not None:
                snapshot_lag = max(0, latest - store_generation)
                if snapshot_lag >= self.health_stale_after:
                    reasons.append("stale_generation")
        return {
            "status": "degraded" if reasons else "ok",
            "reasons": reasons,
            "trained": trained,
            "generation": generation,
            "breaker": breaker_state,
            "snapshot_lag": snapshot_lag,
        }

    def status(self) -> dict:
        self._refresh_snapshot_gauges()
        with self._lock:
            return {
                "trained": self._model is not None,
                "model_size": self._model.model_size if self._model else 0,
                "generation": self._generation,
                "trained_on": self._trained_on,
                "feedback_total": self._buffer.total_seen,
                "feedback_pending": self._since_train,
                "buffer": self._buffer.to_dict(),
                "breaker": self._breaker.to_dict(),
                "quarantine": self._quarantine.to_dict(),
                "sanitize_policy": self.sanitize_policy,
                "last_error": self._last_error,
                "last_retrain_seconds": self._last_retrain_seconds,
                "incremental_updates": self.incremental_updates,
                "last_update": (
                    dict(self._last_update) if self._last_update is not None else None
                ),
                "prediction_cache": {
                    "size": len(self._prediction_cache),
                    "capacity": self._cache_capacity,
                    "hits": self._cache_hits,
                    "misses": self._cache_misses,
                },
                "drift": self._drift_flag,
                "drift_statistic": (
                    round(self._detector.statistic, 3) if self._detector else None
                ),
                "restored_from": self._restored_from,
                "snapshot": (
                    dict(self._snapshot_info)
                    if self._snapshot_info is not None
                    else None
                ),
                "snapshot_dir": (
                    str(self._snapshots.directory)
                    if self._snapshots is not None
                    else None
                ),
            }

    # -- internals -------------------------------------------------------

    def _screen_pair(self, query, selectivity):
        """Validate one feedback pair under the service policy.

        Returns ``(accepted, query, selectivity)``; raises under the
        strict (``raise``) policy.  The strict policy intentionally keeps
        the historical checks only (label finite and in [0, 1]) so
        pre-robustness callers see identical behaviour.
        """
        if self.sanitize_policy == "raise":
            if not isinstance(query, Range):
                raise DataValidationError(
                    f"query must be a Range, got {type(query).__name__}"
                )
            selectivity = float(selectivity)
            if not 0.0 <= selectivity <= 1.0:
                raise DataValidationError(
                    f"selectivity must be in [0, 1], got {selectivity}"
                )
            return True, query, selectivity
        try:
            cleaned_q, cleaned_s, report = sanitize_training_data(
                [query], [selectivity], policy=self.sanitize_policy
            )
        except DataValidationError as exc:
            report = getattr(exc, "report", None)
            with self._lock:
                if report is not None:
                    self._quarantine.merge(report)
                else:
                    self._quarantine.count("invalid_pair")
                    self._quarantine.total += 1
            return False, query, selectivity
        with self._lock:
            self._quarantine.merge(report)
        return True, cleaned_q[0], float(cleaned_s[0])

    def _train_generation(self, queries, labels):
        """Build a complete (model, detector) pair outside the state lock."""
        start = time.monotonic()
        monkey = _active_chaos()
        if monkey is not None:
            monkey.delay_fit()
            if monkey.should_fail_fit():
                raise SolverConvergenceError("chaos: injected retrain failure")
        labels = np.asarray(labels, dtype=float)
        holdout = max(2, int(len(queries) * self.drift_holdout))
        train_q, hold_q = queries[:-holdout] or queries, queries[-holdout:]
        train_s = labels[:-holdout] if len(queries) > holdout else labels
        hold_s = labels[-holdout:]
        model = self._factory()
        policy = None if self.sanitize_policy == "raise" else self.sanitize_policy
        model.fit(train_q, train_s, policy=policy)
        retrain_quarantined = (
            model.sanitization_.quarantined if model.sanitization_ is not None else 0
        )
        elapsed = time.monotonic() - start
        if self.retrain_timeout is not None and elapsed > self.retrain_timeout:
            raise TrainingTimeoutError(
                f"retrain took {elapsed:.2f}s, budget {self.retrain_timeout:.2f}s"
            )
        baseline = (model.predict_many(hold_q) - hold_s) ** 2
        detector = DriftDetector(baseline) if baseline.size >= 2 else None
        return model, len(train_q), detector, retrain_quarantined, elapsed

    def _auto_retrain(self) -> None:
        """Opportunistic retrain from the feedback path: never raises.

        Failures are recorded in the breaker / ``last_error`` and the
        previous generation keeps serving.  With ``incremental_updates``
        the fast :meth:`update` path runs instead (it falls back to a
        full retrain on its own when the model cannot update in place).
        """
        try:
            if self.incremental_updates:
                self.update()
            else:
                self.retrain()
        except Exception:
            pass  # recorded by retrain()/update(); feedback ingestion must not fail


# ---------------------------------------------------------------------------
# HTTP adapter
# ---------------------------------------------------------------------------

#: Known endpoints (canonical paths); anything else is folded into the
#: "other" label so arbitrary probe paths cannot explode metric
#: cardinality.  ``/health`` and ``/metrics`` are deliberately
#: unversioned (probes and scrape configs should not chase API versions).
_ENDPOINTS = frozenset(
    {
        "/v1/estimate",
        "/v1/predict",
        "/v1/feedback",
        "/v1/retrain",
        "/v1/update",
        "/v1/snapshot",
        "/v1/restore",
        "/v1/status",
        "/health",
        "/metrics",
    }
)

#: Pre-versioning paths, kept as aliases of their ``/v1/`` successors.
#: Requests through an alias behave identically but carry a
#: ``Deprecation: true`` response header, and are metered under the
#: canonical endpoint label.
_LEGACY_ALIASES = {
    "/estimate": "/v1/estimate",
    "/predict": "/v1/predict",
    "/feedback": "/v1/feedback",
    "/retrain": "/v1/retrain",
    "/status": "/v1/status",
}

#: Endpoints exempt from admission control and deadlines: probes and
#: scrapes must keep answering precisely when the worker is saturated.
_UNGATED = frozenset({"/health", "/metrics", "/v1/status"})

#: Request header carrying the caller's per-request deadline budget.
DEADLINE_HEADER = "X-Deadline-Ms"

#: Correlation header: echoed when the caller supplies one, generated
#: otherwise.  Every response carries it, and every structured log line
#: emitted while handling the request (admission wait, coalescer flush,
#: kernel spans, access line) is tagged with the same id via
#: :func:`repro.observability.bind_request_id`.
REQUEST_ID_HEADER = "X-Request-Id"

_REQUEST_ID_MAX_LEN = 128


def _clean_request_id(raw: str | None) -> str:
    """Echo the caller's id (sanitised) or mint a fresh one."""
    if raw:
        cleaned = "".join(ch for ch in raw if ch.isprintable()).strip()
        if cleaned:
            return cleaned[:_REQUEST_ID_MAX_LEN]
    return uuid.uuid4().hex[:16]


def _render_metrics(service: EstimatorService) -> str:
    """Exposition text: the service registry plus (if distinct) the
    process-global registry carrying solver/kernel instrumentation.

    Families the service registry already exposes are skipped from the
    shared registry — a family may appear once per page (one HELP/TYPE),
    and the service's own series are the authoritative ones.
    """
    registry = service.registry
    shared = default_registry()
    if registry is shared:
        return registry.render()
    chunks = [registry.render().rstrip("\n")]
    seen = set(registry.names())
    chunks.extend(
        metric.render()
        for metric in shared.collect()
        if metric.name not in seen
    )
    chunks = [chunk for chunk in chunks if chunk]
    return "\n".join(chunks) + ("\n" if chunks else "")


def _make_handler(
    service: EstimatorService,
    access_log: bool = False,
    *,
    admission=None,
    coalescer=None,
    default_deadline_ms: float | None = None,
    draining: threading.Event | None = None,
):
    """Build the request handler class bound to one service.

    The handler is *embeddable*: a plain single-process ``serve()`` wires
    no extras, while each :mod:`repro.serving` worker injects its
    admission controller (deadline budgets, bounded queue, load
    shedding), its micro-batching coalescer for the estimate/predict
    paths, and a ``draining`` event that turns new requests away with
    503 during graceful shutdown.  All four extras are duck-typed so the
    server layer stays importable without the serving package.
    """
    registry = service.registry
    http_requests = registry.counter(
        "repro_http_requests_total",
        "HTTP requests by method, endpoint and status class",
        labels=("method", "endpoint", "status"),
    )
    http_seconds = registry.histogram(
        "repro_http_request_seconds",
        "HTTP request handling latency in seconds",
        labels=("endpoint",),
    )
    stage_seconds = registry.histogram(
        "repro_request_stage_seconds",
        "Per-request latency breakdown: queue (admission wait), coalesce "
        "(flush-window + sibling wait), kernel (estimate_many call), total",
        labels=("stage",),
    )
    access_logger = get_logger("http.access")

    class Handler(BaseHTTPRequestHandler):
        def log_request(self, code="-", size="-"):
            pass  # replaced by the structured access line in _guarded

        def log_message(self, fmt, *args):
            # stdlib plumbing messages (log_error etc.): route through the
            # structured logger instead of bare stderr; quiet unless the
            # access log is enabled.
            if access_log:
                log_event(
                    access_logger,
                    fmt % args,
                    level=logging.WARNING,
                    client=self.address_string(),
                )

        def _reply_body(
            self,
            code: int,
            body: bytes,
            content_type: str,
            headers: dict | None = None,
        ) -> None:
            self._status_code = code
            self.send_response(code)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            request_id = getattr(self, "_request_id", None)
            if request_id is not None:
                self.send_header(REQUEST_ID_HEADER, request_id)
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            if getattr(self, "_deprecated", False):
                # RFC 9745: the client used a pre-versioning alias.
                self.send_header("Deprecation", "true")
                self.send_header("Link", f'<{self._canonical}>; rel="successor-version"')
            self.end_headers()
            self.wfile.write(body)

        def _reply(
            self, code: int, payload: dict, headers: dict | None = None
        ) -> None:
            self._reply_body(
                code, json.dumps(payload).encode(), "application/json", headers
            )

        def _read_json(self) -> dict:
            try:
                length = int(self.headers.get("Content-Length", 0))
            except (TypeError, ValueError) as exc:
                raise DataValidationError(f"bad Content-Length header: {exc}") from exc
            raw = self.rfile.read(length) or b"{}"
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise DataValidationError(f"malformed JSON body: {exc}") from exc
            if not isinstance(payload, dict):
                raise DataValidationError(
                    f"request body must be a JSON object, got {type(payload).__name__}"
                )
            return payload

        def _request_deadline(self) -> Deadline:
            """Per-request deadline: header overrides the server default."""
            raw = self.headers.get(DEADLINE_HEADER)
            if raw is None:
                return Deadline.after_ms(default_deadline_ms)
            try:
                budget_ms = float(raw)
            except (TypeError, ValueError) as exc:
                raise DataValidationError(
                    f"bad {DEADLINE_HEADER} header {raw!r}: {exc}"
                ) from exc
            return Deadline.after_ms(budget_ms)

        def _guarded(self, handler) -> None:
            """Run ``handler``; render any failure as structured JSON and
            record the per-endpoint request metrics either way.

            Also owns the request's tracing context: generate-or-echo
            the ``X-Request-Id`` (bound to the thread so every log line
            down-stack carries it) and collect the per-stage latency
            breakdown (queue wait here, coalesce/kernel from the
            coalescer or the direct service call) into
            ``repro_request_stage_seconds`` and the access line.
            """
            self._status_code = 0
            self._canonical = _LEGACY_ALIASES.get(self.path, self.path)
            self._deprecated = self._canonical != self.path
            self._request_id = _clean_request_id(
                self.headers.get(REQUEST_ID_HEADER)
            )
            self._stages: dict[str, float] = {}
            endpoint = self._canonical if self._canonical in _ENDPOINTS else "other"
            gated = endpoint not in _UNGATED
            start = time.perf_counter()
            try:
                with bind_request_id(self._request_id):
                    try:
                        if not gated:
                            self._deadline = Deadline(None)
                            handler()
                        else:
                            if draining is not None and draining.is_set():
                                # Graceful shutdown: turn work away, stay
                                # polite to probes (handled above).
                                self._reply(
                                    503,
                                    {"error": "worker draining", "type": "Draining"},
                                    headers={"Retry-After": "1"},
                                )
                                return
                            self._deadline = self._request_deadline()
                            self._deadline.check()
                            if admission is not None:
                                admit_start = time.perf_counter()
                                with admission.admit(self._deadline):
                                    self._stages["queue"] = (
                                        time.perf_counter() - admit_start
                                    )
                                    handler()
                            else:
                                handler()
                    except ReproError as exc:
                        self._reply(
                            exc.http_status,
                            exc.to_dict(),
                            headers=getattr(exc, "http_headers", None),
                        )
                    except (KeyError, TypeError, ValueError) as exc:
                        self._reply(
                            400, {"error": str(exc), "type": type(exc).__name__}
                        )
                    except RuntimeError as exc:
                        self._reply(
                            409, {"error": str(exc), "type": type(exc).__name__}
                        )
                    except Exception as exc:  # never a traceback / hung socket
                        self._reply(
                            500,
                            {
                                "error": "internal server error",
                                "type": type(exc).__name__,
                            },
                        )
            finally:
                elapsed = time.perf_counter() - start
                status = self._status_code or 500
                http_seconds.observe(elapsed, endpoint=endpoint)
                http_requests.inc(
                    method=self.command,
                    endpoint=endpoint,
                    status=f"{status // 100}xx",
                )
                if gated:
                    # Probes/scrapes are excluded: their totals would
                    # swamp the breakdown with non-request noise.
                    self._stages["total"] = elapsed
                    for stage, seconds in self._stages.items():
                        stage_seconds.observe(seconds, stage=stage)
                if access_log:
                    log_event(
                        access_logger,
                        "http_request",
                        method=self.command,
                        path=self.path,
                        status=status,
                        seconds=round(elapsed, 6),
                        client=self.address_string(),
                        request_id=self._request_id,
                        stages={
                            stage: round(seconds, 6)
                            for stage, seconds in self._stages.items()
                        },
                    )

        def do_GET(self):
            def handle():
                path = self._canonical
                if path == "/v1/status":
                    self._reply(200, service.status())
                elif path == "/health":
                    # Liveness probe: always 200 while the process is up;
                    # the body carries ok-vs-degraded (breaker open /
                    # stale serving generation) for LBs and supervisors.
                    self._reply(200, service.health())
                elif path == "/metrics":
                    self._reply_body(
                        200,
                        _render_metrics(service).encode(),
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                else:
                    self._reply(
                        404,
                        {"error": f"unknown path {self.path}", "type": "NotFound"},
                    )

            self._guarded(handle)

        def do_POST(self):
            def handle():
                path = self._canonical
                if path == "/v1/estimate":
                    data = self._read_json()
                    query = range_from_dict(data["query"])
                    if coalescer is not None:
                        value = coalescer.submit(
                            query, deadline=self._deadline, stages=self._stages
                        )
                    else:
                        kernel_start = time.perf_counter()
                        value = service.estimate(query)
                        self._stages["kernel"] = (
                            time.perf_counter() - kernel_start
                        )
                    self._reply(200, {"selectivity": value})
                elif path == "/v1/predict":
                    data = self._read_json()
                    encoded = data["queries"]
                    if not isinstance(encoded, list):
                        raise DataValidationError(
                            f"'queries' must be a list, got {type(encoded).__name__}"
                        )
                    queries = [range_from_dict(item) for item in encoded]
                    if coalescer is not None:
                        estimates = coalescer.submit_many(
                            queries, deadline=self._deadline, stages=self._stages
                        )
                    else:
                        kernel_start = time.perf_counter()
                        estimates = service.estimate_many(queries)
                        self._stages["kernel"] = (
                            time.perf_counter() - kernel_start
                        )
                    self._reply(
                        200, {"selectivities": estimates, "count": len(estimates)}
                    )
                elif path == "/v1/feedback":
                    data = self._read_json()
                    query = range_from_dict(data["query"])
                    result = service.feedback(query, float(data["selectivity"]))
                    self._reply(200, result)
                elif path == "/v1/retrain":
                    self._reply(200, service.retrain())
                elif path == "/v1/update":
                    self._reply(200, service.update())
                elif path == "/v1/snapshot":
                    self._reply(200, service.snapshot())
                elif path == "/v1/restore":
                    data = self._read_json()
                    artifact = data.get("path")
                    if artifact is not None and not isinstance(artifact, str):
                        raise DataValidationError(
                            f"'path' must be a string, got {type(artifact).__name__}"
                        )
                    self._reply(200, service.restore(artifact))
                else:
                    self._reply(
                        404,
                        {"error": f"unknown path {self.path}", "type": "NotFound"},
                    )

            self._guarded(handle)

    return Handler


def make_server(
    service: EstimatorService,
    host: str = "127.0.0.1",
    port: int = 0,
    access_log: bool = False,
    *,
    sock=None,
    admission=None,
    coalescer=None,
    default_deadline_ms: float | None = None,
    draining: threading.Event | None = None,
) -> ThreadingHTTPServer:
    """Build (but do not start) the HTTP server for ``service``.

    ``sock`` adopts a pre-bound, already-listening socket instead of
    binding ``(host, port)`` — the pre-fork path: the
    :class:`repro.serving.Supervisor` binds once and every worker process
    accepts from the same shared listen queue, so a killed worker never
    strands connections that the kernel has not yet handed to it.  The
    remaining keyword extras are forwarded to the request handler (see
    :func:`_make_handler`).

    The returned server is a stock ``ThreadingHTTPServer``; its
    ``server_close()`` joins in-flight request threads (stdlib
    ``block_on_close``), which is exactly the "stop accepting, flush
    in-flight" half of a graceful drain.
    """
    handler = _make_handler(
        service,
        access_log,
        admission=admission,
        coalescer=coalescer,
        default_deadline_ms=default_deadline_ms,
        draining=draining,
    )
    if sock is None:
        return ThreadingHTTPServer((host, port), handler)
    server = ThreadingHTTPServer(sock.getsockname()[:2], handler, bind_and_activate=False)
    server.socket.close()  # replace the unbound default with the shared one
    server.socket = sock
    server.server_address = sock.getsockname()
    server.server_name, server.server_port = server.server_address[:2]
    return server


def serve(
    service: EstimatorService,
    host: str = "127.0.0.1",
    port: int = 0,
    access_log: bool = False,
    **extras,
) -> ThreadingHTTPServer:
    """Start the HTTP server on a background thread; returns the server.

    ``port=0`` picks a free port (read it from ``server.server_address``).
    ``access_log=True`` emits one structured log line per request through
    the ``repro.http.access`` logger (see
    :func:`repro.observability.configure_logging`); the default keeps
    tests and embedded use quiet.  Keyword ``extras`` are forwarded to
    :func:`make_server` (admission controller, coalescer, default
    deadline, drain event, shared socket).  Call ``server.shutdown()`` to
    stop accepting and ``server.server_close()`` to flush in-flight
    requests.
    """
    server = make_server(service, host, port, access_log, **extras)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server
