"""L∞-objective weight estimation (Section 4.6 of the paper).

Section 4.6 retrains the models with the worst-case (L∞) loss in place of
the squared loss.  The problem

.. math::
    \\min_w \\max_i |(A w)_i - s_i| \\quad \\text{s.t.}\\;
    \\mathbf{1}^T w = 1,\\; w \\ge 0

is a linear program: minimise ``t`` subject to ``-t <= (A w)_i - s_i <= t``.
Solved with scipy's HiGHS backend.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

__all__ = ["fit_simplex_weights_linf"]


def fit_simplex_weights_linf(
    a: np.ndarray, s: np.ndarray, warm_start: np.ndarray | None = None
) -> np.ndarray:
    """Minimise the L∞ training error over the probability simplex.

    ``warm_start`` cannot speed up the solve itself — scipy's HiGHS
    interface re-solves from scratch — but a valid previous weight
    vector replaces the uniform distribution as the failure fallback,
    which keeps an incremental update close to its predecessor instead
    of collapsing to uniform when the LP degenerates.
    """
    a = np.asarray(a, dtype=float)
    s = np.asarray(s, dtype=float)
    if a.ndim != 2:
        raise ValueError(f"a must be 2-D, got shape {a.shape}")
    m, n = a.shape
    if s.shape != (m,):
        raise ValueError(f"s must have shape ({m},), got {s.shape}")
    if n == 0:
        raise ValueError("at least one bucket is required")
    if n == 1:
        return np.ones(1)

    fallback = np.full(n, 1.0 / n)
    if warm_start is not None:
        ws = np.asarray(warm_start, dtype=float)
        if ws.shape == (n,) and np.all(np.isfinite(ws)) and float(ws.sum()) > 0.0:
            ws = np.maximum(ws, 0.0)
            total = float(ws.sum())
            if total > 0.0:
                fallback = ws / total

    # Variables: [w (n), t (1)]; objective: minimise t.
    c = np.zeros(n + 1)
    c[n] = 1.0
    #  A w - s <= t   ->  A w - t <= s
    # -(A w - s) <= t -> -A w - t <= -s
    a_ub = np.zeros((2 * m, n + 1))
    a_ub[:m, :n] = a
    a_ub[:m, n] = -1.0
    a_ub[m:, :n] = -a
    a_ub[m:, n] = -1.0
    b_ub = np.concatenate([s, -s])
    a_eq = np.zeros((1, n + 1))
    a_eq[0, :n] = 1.0
    b_eq = np.array([1.0])
    bounds = [(0.0, 1.0)] * n + [(0.0, None)]
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, A_eq=a_eq, b_eq=b_eq, bounds=bounds, method="highs")
    if result.status != 0 or result.x is None:
        # The simplex is non-empty so this should never trigger; fall back
        # to the warm start (or uniform) rather than crash mid-training.
        return fallback
    w = np.maximum(result.x[:n], 0.0)
    total = float(w.sum())
    return w / total if total > 0 else fallback
