"""Least squares over the probability simplex (Eq. 8 of the paper).

Three interchangeable methods solve

.. math::
    \\min_w \\|A w - s\\|_2^2 \\quad \\text{s.t.} \\quad
    \\mathbf{1}^T w = 1, \\; 0 \\le w \\le 1:

``"penalty"``
    The paper's approach: append a heavily weighted row ``√λ·1ᵀ w = √λ`` to
    the system and solve plain NNLS (scipy's compiled Lawson–Hanson — the
    solver the paper cites), then renormalise exactly.  Fast and, for
    large λ, within solver precision of the constrained optimum.
``"penalty-own"``
    Same formulation solved by this repository's pure-Python Lawson–Hanson
    (:mod:`repro.solvers.nnls`) — slower, kept for self-containedness and
    cross-validation of the compiled solver.
``"pgd"``
    Exact accelerated projected gradient (FISTA) with Euclidean projection
    onto the simplex — converges to the true constrained minimiser.
``"active-set"``
    Penalty solution polished by FISTA; kept as a distinct name for the
    ablation benchmark.

All methods return a valid probability vector; ``w <= 1`` is implied by
``w >= 0`` and the sum constraint.

For serving paths that must never fail, :func:`fit_simplex_weights_robust`
wraps the single-method solvers in a **fallback ladder**

.. code-block:: text

    requested method  →  pgd  →  lstsq-project  →  uniform

with per-attempt deadlines, retry-with-backoff for transient numerical
failures, and a :class:`SolveReport` recording which rung produced the
answer.  The final rung (the uniform distribution) cannot fail, so the
robust entry point always returns a valid simplex vector.

Both entry points accept ``warm_start=``, a previous weight vector to
resume from: ``penalty``/``pgd``/``active-set`` polish it with FISTA
from its simplex projection (power-iteration Lipschitz estimate, so the
solve stays matvec-cheap), while ``penalty-own`` resumes the pure-Python
Lawson–Hanson active set from its support.  For an incremental refit
whose optimum moved only slightly this replaces a full NNLS solve with a
handful of iterations — the basis of the cheap `update()` path
(``docs/online_learning.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.robustness.chaos import active as _active_chaos
from repro.robustness.errors import DataValidationError, SolverConvergenceError
from repro.solvers.nnls import nnls as _own_nnls

__all__ = [
    "project_to_simplex",
    "fit_simplex_weights",
    "fit_simplex_weights_robust",
    "SolveAttempt",
    "SolveReport",
]

_METHODS = ("penalty", "penalty-own", "pgd", "active-set", "scipy-nnls")


def project_to_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection of ``v`` onto the probability simplex.

    The O(n log n) sorting algorithm of Held/Wolfe/Crowder (popularised by
    Duchi et al. 2008).
    """
    v = np.asarray(v, dtype=float)
    if v.ndim != 1:
        raise ValueError(f"v must be 1-D, got shape {v.shape}")
    n = v.shape[0]
    sorted_desc = np.sort(v)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    rho_candidates = sorted_desc - cumulative / np.arange(1, n + 1)
    rho = int(np.nonzero(rho_candidates > 0)[0][-1])
    theta = cumulative[rho] / (rho + 1)
    return np.maximum(v - theta, 0.0)


def _penalty_solution(
    a: np.ndarray,
    s: np.ndarray,
    penalty: float,
    use_scipy: bool,
    warm_start: np.ndarray | None = None,
) -> np.ndarray:
    m, n = a.shape
    root = np.sqrt(penalty)
    a_aug = np.concatenate([a, root * np.ones((1, n))], axis=0)
    s_aug = np.concatenate([s, [root]])
    if warm_start is not None and not use_scipy:
        # Active-set resume: seed Lawson–Hanson's passive set with the
        # previous solution's support.  Near-unchanged support converges
        # in a handful of outer iterations instead of one per support
        # element (scipy's compiled NNLS has no warm-start entry point).
        w = _own_nnls(a_aug, s_aug, x0=np.maximum(warm_start, 0.0))
    elif use_scipy:
        from scipy.optimize import nnls as scipy_nnls

        try:
            w, _ = scipy_nnls(a_aug, s_aug, maxiter=max(30 * n, 3000))
        except RuntimeError:
            # scipy >= 1.12 raises instead of returning its best iterate
            # when the iteration cap is hit on ill-conditioned systems;
            # fall back to the exact projected-gradient solve.
            return _fista(a, s, np.full(n, 1.0 / n), max_iter=3000, tol=1e-10)
    else:
        w = _own_nnls(a_aug, s_aug)
    total = float(w.sum())
    if total <= 0.0:
        return np.full(n, 1.0 / n)
    return w / total


def _spectral_norm_estimate(a: np.ndarray, iters: int = 40) -> float:
    """Power-iteration upper estimate of ``||a||_2``.

    The exact spectral norm is a full SVD — O(mn·min(m,n)) — which can
    cost more than the warm solve it serves.  Power iteration needs
    ``iters`` matvec pairs; the 5% safety margin keeps the FISTA step
    valid (an *over*-estimate of the Lipschitz constant is safe, an
    under-estimate diverges).
    """
    m, n = a.shape
    v = np.full(n, 1.0 / np.sqrt(n))
    sigma = 0.0
    for _ in range(iters):
        u = a @ v
        norm_u = float(np.linalg.norm(u))
        if norm_u == 0.0:
            return 0.0
        v = a.T @ (u / norm_u)
        sigma = float(np.linalg.norm(v))
        if sigma == 0.0:
            return 0.0
        v = v / sigma
    return 1.05 * sigma


def _fista(
    a: np.ndarray,
    s: np.ndarray,
    w0: np.ndarray,
    max_iter: int,
    tol: float,
    lipschitz: float | None = None,
) -> np.ndarray:
    # Lipschitz constant of the gradient: 2 * largest eigenvalue of A^T A.
    if min(a.shape) == 0:
        return w0
    if lipschitz is None:
        spectral = np.linalg.norm(a, ord=2)
        lipschitz = 2.0 * spectral**2
    if lipschitz <= 0.0:
        return w0
    step = 1.0 / lipschitz
    w = w0.copy()
    y = w0.copy()
    t = 1.0
    prev_obj = np.inf
    for _ in range(max_iter):
        gradient = 2.0 * (a.T @ (a @ y - s))
        w_next = project_to_simplex(y - step * gradient)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        y = w_next + (t - 1.0) / t_next * (w_next - w)
        w, t = w_next, t_next
        obj = float(np.sum((a @ w - s) ** 2))
        if abs(prev_obj - obj) <= tol * max(1.0, obj):
            break
        prev_obj = obj
    return w


def _warm_polish(
    a: np.ndarray, s: np.ndarray, warm: np.ndarray, max_iter: int, tol: float
) -> np.ndarray:
    """Resume from ``warm``: FISTA from its simplex projection, with a
    power-iteration Lipschitz estimate instead of the exact (SVD-cost)
    spectral norm — the whole point of the warm path is to stay cheap.

    The iteration budget is deliberately small: a warm start near the
    optimum converges in tens of iterations, and callers that need more
    accuracy fall back to a cold solve (the service's residual budget
    enforces exactly that).
    """
    start = project_to_simplex(warm)
    sigma = _spectral_norm_estimate(a, iters=25)
    iters = max(30, min(max_iter, 100))
    # A looser stall tolerance than the cold solve's: near the optimum
    # the objective plateaus long before a 1e-10 relative change, and
    # the residual budget upstream catches any genuinely stale start.
    return _fista(a, s, start, iters, max(tol, 1e-7), lipschitz=2.0 * sigma * sigma)


def _clean_warm_start(warm_start: np.ndarray | None, n: int) -> np.ndarray | None:
    """Validate a warm-start vector; returns ``None`` when unusable."""
    if warm_start is None:
        return None
    w = np.asarray(warm_start, dtype=float)
    if w.shape != (n,) or not np.all(np.isfinite(w)):
        return None
    return np.maximum(w, 0.0)


def fit_simplex_weights(
    a: np.ndarray,
    s: np.ndarray,
    method: str = "penalty",
    penalty: float = 1e4,
    max_iter: int = 2000,
    tol: float = 1e-10,
    warm_start: np.ndarray | None = None,
) -> np.ndarray:
    """Solve Eq. (8): simplex-constrained least squares.

    Parameters
    ----------
    a:
        Design matrix ``(n_queries, n_buckets)``; entry ``(i, j)`` is the
        fraction of bucket ``j`` covered by query ``i`` (histograms) or the
        indicator ``1(B_j in R_i)`` (discrete distributions).
    s:
        Observed selectivities, shape ``(n_queries,)``.
    method:
        One of ``"penalty"`` (default), ``"pgd"``, ``"active-set"``,
        ``"scipy-nnls"`` (penalty formulation solved by scipy's NNLS).
    warm_start:
        Optional previous weight vector (shape ``(n_buckets,)``) to
        resume from.  ``penalty``/``pgd``/``active-set`` polish it with
        FISTA from its simplex projection; ``penalty-own`` resumes the
        Lawson–Hanson active set from its support.  Must already be
        remapped to the *current* column order — a shape mismatch
        raises :class:`DataValidationError`.

    Returns
    -------
    Weights ``w`` on the probability simplex.
    """
    a = np.asarray(a, dtype=float)
    s = np.asarray(s, dtype=float)
    if a.ndim != 2:
        raise DataValidationError(f"a must be 2-D, got shape {a.shape}")
    if s.shape != (a.shape[0],):
        raise DataValidationError(f"s must have shape ({a.shape[0]},), got {s.shape}")
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {_METHODS}")
    n = a.shape[1]
    if n == 0:
        raise DataValidationError("at least one bucket is required")
    if warm_start is not None:
        ws = np.asarray(warm_start, dtype=float)
        if ws.shape != (n,):
            raise DataValidationError(
                f"warm_start must have shape ({n},), got {ws.shape}; "
                "remap columns before warm-starting"
            )
        warm_start = _clean_warm_start(ws, n)
    if n == 1:
        return np.ones(1)

    if method in ("penalty", "scipy-nnls"):
        if warm_start is not None:
            # The compiled NNLS cannot resume from a previous solution;
            # polishing the warm start with the exact projected-gradient
            # method converges in a handful of cheap matvec iterations
            # when the optimum moved only slightly — the incremental
            # fast path.  Cold solves keep the paper's NNLS formulation.
            return _warm_polish(a, s, warm_start, max_iter, tol)
        return _penalty_solution(a, s, penalty, use_scipy=True)
    if method == "penalty-own":
        return _penalty_solution(a, s, penalty, use_scipy=False, warm_start=warm_start)
    if method == "pgd":
        if warm_start is not None:
            return _warm_polish(a, s, warm_start, max_iter, tol)
        return _fista(a, s, np.full(n, 1.0 / n), max_iter, tol)
    # "active-set": penalty warm start polished by the exact method; with
    # an explicit warm start the penalty phase is unnecessary — polish
    # the previous solution directly.
    if warm_start is not None:
        return _warm_polish(a, s, warm_start, max_iter, tol)
    start = _penalty_solution(a, s, penalty, use_scipy=True)
    return _fista(a, s, start, max_iter // 2, tol)


# ---------------------------------------------------------------------------
# Fallback ladder (robust entry point)
# ---------------------------------------------------------------------------


@dataclass
class SolveAttempt:
    """One rung attempt inside the fallback ladder."""

    rung: str
    ok: bool
    seconds: float
    error: str | None = None


@dataclass
class SolveReport:
    """How a robust solve was actually produced."""

    requested: str
    rung: str = ""
    fallback: bool = False
    deadline_exceeded: bool = False
    inputs_cleaned: bool = False
    warm_started: bool = False
    residual: float = float("nan")
    seconds: float = 0.0
    attempts: list[SolveAttempt] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "requested": self.requested,
            "rung": self.rung,
            "fallback": self.fallback,
            "deadline_exceeded": self.deadline_exceeded,
            "inputs_cleaned": self.inputs_cleaned,
            "warm_started": self.warm_started,
            "residual": None if np.isnan(self.residual) else round(self.residual, 6),
            "seconds": round(self.seconds, 4),
            "attempts": [
                {"rung": a.rung, "ok": a.ok, "seconds": round(a.seconds, 4), "error": a.error}
                for a in self.attempts
            ],
        }


def _validate_simplex(w: np.ndarray, n: int, tol: float = 1e-6) -> np.ndarray:
    """Check ``w`` is a usable probability vector; normalise float noise."""
    w = np.asarray(w, dtype=float)
    if w.shape != (n,):
        raise SolverConvergenceError(f"solver returned shape {w.shape}, expected ({n},)")
    if not np.all(np.isfinite(w)):
        raise SolverConvergenceError("solver returned non-finite weights")
    if np.any(w < -tol):
        raise SolverConvergenceError(f"solver returned negative weights (min {w.min():.3g})")
    total = float(w.sum())
    if not (1.0 - 1e-3) <= total <= (1.0 + 1e-3):
        raise SolverConvergenceError(f"solver weights sum to {total:.6g}, expected 1")
    w = np.maximum(w, 0.0)
    return w / w.sum()


#: Exception types treated as *transient* (retried with backoff) rather
#: than structural.  Anything else aborts the rung immediately.
_TRANSIENT = (SolverConvergenceError, np.linalg.LinAlgError, FloatingPointError, RuntimeError)


def _run_rung(rung: str, a: np.ndarray, s: np.ndarray, penalty: float,
              max_iter: int, tol: float,
              warm_start: np.ndarray | None = None) -> np.ndarray:
    n = a.shape[1]
    monkey = _active_chaos()
    if rung != "uniform" and monkey is not None and monkey.should_fail_solver(rung):
        raise SolverConvergenceError(f"chaos: injected failure in rung {rung!r}")
    if rung == "lstsq-project":
        solution, *_ = np.linalg.lstsq(a, s, rcond=None)
        return project_to_simplex(solution)
    if rung == "uniform":
        return np.full(n, 1.0 / n)
    return fit_simplex_weights(a, s, method=rung, penalty=penalty,
                               max_iter=max_iter, tol=tol, warm_start=warm_start)


def fit_simplex_weights_robust(
    a: np.ndarray,
    s: np.ndarray,
    method: str = "penalty",
    penalty: float = 1e4,
    max_iter: int = 2000,
    tol: float = 1e-10,
    deadline_seconds: float | None = None,
    retries: int = 1,
    backoff_seconds: float = 0.02,
    warm_start: np.ndarray | None = None,
) -> tuple[np.ndarray, SolveReport]:
    """Solve Eq. (8) with the fallback ladder; never raises on solver
    failure.

    The ladder is ``method → pgd → lstsq-project → uniform`` (duplicates
    removed, order kept).  Each rung is validated with
    :func:`_validate_simplex`; a failing rung is retried ``retries``
    times with exponential backoff (transient numerical failures only)
    before the ladder descends.  ``deadline_seconds`` bounds the *total*
    solve: once spent, remaining non-trivial rungs are skipped and the
    uniform rung answers.

    ``warm_start`` is best-effort: an invalid vector (wrong shape,
    non-finite entries) is silently dropped rather than failing the
    robust path — the report records whether it was actually used.

    Returns
    -------
    ``(weights, report)`` — a valid probability vector plus the
    :class:`SolveReport` describing how it was obtained.

    Raises
    ------
    DataValidationError
        Only for structurally unusable inputs (wrong shapes / no
        buckets) — never for numerical failure.
    """
    a = np.asarray(a, dtype=float)
    s = np.asarray(s, dtype=float)
    if a.ndim != 2:
        raise DataValidationError(f"a must be 2-D, got shape {a.shape}")
    if s.shape != (a.shape[0],):
        raise DataValidationError(f"s must have shape ({a.shape[0]},), got {s.shape}")
    n = a.shape[1]
    if n == 0:
        raise DataValidationError("at least one bucket is required")

    report = SolveReport(requested=method)
    warm_start = _clean_warm_start(warm_start, n)
    report.warm_started = warm_start is not None
    if not (np.all(np.isfinite(a)) and np.all(np.isfinite(s))):
        # Non-finite inputs would poison every least-squares rung; clean
        # them rather than fail (sanitization upstream should normally
        # prevent this — the report records that it did not).
        a = np.nan_to_num(a, nan=0.0, posinf=1.0, neginf=0.0)
        s = np.clip(np.nan_to_num(s, nan=0.0, posinf=1.0, neginf=0.0), 0.0, 1.0)
        report.inputs_cleaned = True

    ladder = []
    for rung in (method, "pgd", "lstsq-project", "uniform"):
        if rung not in ladder:
            ladder.append(rung)

    start = time.monotonic()
    weights: np.ndarray | None = None
    for rung in ladder:
        elapsed = time.monotonic() - start
        if (
            deadline_seconds is not None
            and elapsed >= deadline_seconds
            and rung != "uniform"
        ):
            report.deadline_exceeded = True
            report.attempts.append(
                SolveAttempt(rung=rung, ok=False, seconds=0.0, error="deadline exceeded")
            )
            continue
        max_tries = 1 + max(0, retries) if rung not in ("uniform", "lstsq-project") else 1
        for attempt_index in range(max_tries):
            t0 = time.monotonic()
            try:
                candidate = _run_rung(rung, a, s, penalty, max_iter, tol,
                                      warm_start=warm_start)
                weights = _validate_simplex(candidate, n)
                report.attempts.append(
                    SolveAttempt(rung=rung, ok=True, seconds=time.monotonic() - t0)
                )
                break
            except _TRANSIENT as exc:
                report.attempts.append(
                    SolveAttempt(
                        rung=rung, ok=False, seconds=time.monotonic() - t0, error=str(exc)
                    )
                )
                out_of_time = (
                    deadline_seconds is not None
                    and time.monotonic() - start >= deadline_seconds
                )
                if attempt_index + 1 < max_tries and not out_of_time:
                    time.sleep(backoff_seconds * (2.0**attempt_index))
        if weights is not None:
            report.rung = rung
            break

    if weights is None:  # unreachable: the uniform rung cannot fail
        weights = np.full(n, 1.0 / n)
        report.rung = "uniform"
    report.fallback = report.rung != method
    report.seconds = time.monotonic() - start
    report.residual = float(np.sqrt(np.mean((a @ weights - s) ** 2))) if a.size else 0.0
    return weights, report
