"""Least squares over the probability simplex (Eq. 8 of the paper).

Three interchangeable methods solve

.. math::
    \\min_w \\|A w - s\\|_2^2 \\quad \\text{s.t.} \\quad
    \\mathbf{1}^T w = 1, \\; 0 \\le w \\le 1:

``"penalty"``
    The paper's approach: append a heavily weighted row ``√λ·1ᵀ w = √λ`` to
    the system and solve plain NNLS (scipy's compiled Lawson–Hanson — the
    solver the paper cites), then renormalise exactly.  Fast and, for
    large λ, within solver precision of the constrained optimum.
``"penalty-own"``
    Same formulation solved by this repository's pure-Python Lawson–Hanson
    (:mod:`repro.solvers.nnls`) — slower, kept for self-containedness and
    cross-validation of the compiled solver.
``"pgd"``
    Exact accelerated projected gradient (FISTA) with Euclidean projection
    onto the simplex — converges to the true constrained minimiser.
``"active-set"``
    Penalty solution polished by FISTA; kept as a distinct name for the
    ablation benchmark.

All methods return a valid probability vector; ``w <= 1`` is implied by
``w >= 0`` and the sum constraint.
"""

from __future__ import annotations

import numpy as np

from repro.solvers.nnls import nnls as _own_nnls

__all__ = ["project_to_simplex", "fit_simplex_weights"]

_METHODS = ("penalty", "penalty-own", "pgd", "active-set", "scipy-nnls")


def project_to_simplex(v: np.ndarray) -> np.ndarray:
    """Euclidean projection of ``v`` onto the probability simplex.

    The O(n log n) sorting algorithm of Held/Wolfe/Crowder (popularised by
    Duchi et al. 2008).
    """
    v = np.asarray(v, dtype=float)
    if v.ndim != 1:
        raise ValueError(f"v must be 1-D, got shape {v.shape}")
    n = v.shape[0]
    sorted_desc = np.sort(v)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    rho_candidates = sorted_desc - cumulative / np.arange(1, n + 1)
    rho = int(np.nonzero(rho_candidates > 0)[0][-1])
    theta = cumulative[rho] / (rho + 1)
    return np.maximum(v - theta, 0.0)


def _penalty_solution(a: np.ndarray, s: np.ndarray, penalty: float, use_scipy: bool) -> np.ndarray:
    m, n = a.shape
    root = np.sqrt(penalty)
    a_aug = np.concatenate([a, root * np.ones((1, n))], axis=0)
    s_aug = np.concatenate([s, [root]])
    if use_scipy:
        from scipy.optimize import nnls as scipy_nnls

        try:
            w, _ = scipy_nnls(a_aug, s_aug, maxiter=max(30 * n, 3000))
        except RuntimeError:
            # scipy >= 1.12 raises instead of returning its best iterate
            # when the iteration cap is hit on ill-conditioned systems;
            # fall back to the exact projected-gradient solve.
            return _fista(a, s, np.full(n, 1.0 / n), max_iter=3000, tol=1e-10)
    else:
        w = _own_nnls(a_aug, s_aug)
    total = float(w.sum())
    if total <= 0.0:
        return np.full(n, 1.0 / n)
    return w / total


def _fista(a: np.ndarray, s: np.ndarray, w0: np.ndarray, max_iter: int, tol: float) -> np.ndarray:
    # Lipschitz constant of the gradient: 2 * largest eigenvalue of A^T A.
    if min(a.shape) == 0:
        return w0
    spectral = np.linalg.norm(a, ord=2)
    lipschitz = 2.0 * spectral**2
    if lipschitz <= 0.0:
        return w0
    step = 1.0 / lipschitz
    w = w0.copy()
    y = w0.copy()
    t = 1.0
    prev_obj = np.inf
    for _ in range(max_iter):
        gradient = 2.0 * (a.T @ (a @ y - s))
        w_next = project_to_simplex(y - step * gradient)
        t_next = 0.5 * (1.0 + np.sqrt(1.0 + 4.0 * t * t))
        y = w_next + (t - 1.0) / t_next * (w_next - w)
        w, t = w_next, t_next
        obj = float(np.sum((a @ w - s) ** 2))
        if abs(prev_obj - obj) <= tol * max(1.0, obj):
            break
        prev_obj = obj
    return w


def fit_simplex_weights(
    a: np.ndarray,
    s: np.ndarray,
    method: str = "penalty",
    penalty: float = 1e4,
    max_iter: int = 2000,
    tol: float = 1e-10,
) -> np.ndarray:
    """Solve Eq. (8): simplex-constrained least squares.

    Parameters
    ----------
    a:
        Design matrix ``(n_queries, n_buckets)``; entry ``(i, j)`` is the
        fraction of bucket ``j`` covered by query ``i`` (histograms) or the
        indicator ``1(B_j in R_i)`` (discrete distributions).
    s:
        Observed selectivities, shape ``(n_queries,)``.
    method:
        One of ``"penalty"`` (default), ``"pgd"``, ``"active-set"``,
        ``"scipy-nnls"`` (penalty formulation solved by scipy's NNLS).

    Returns
    -------
    Weights ``w`` on the probability simplex.
    """
    a = np.asarray(a, dtype=float)
    s = np.asarray(s, dtype=float)
    if a.ndim != 2:
        raise ValueError(f"a must be 2-D, got shape {a.shape}")
    if s.shape != (a.shape[0],):
        raise ValueError(f"s must have shape ({a.shape[0]},), got {s.shape}")
    if method not in _METHODS:
        raise ValueError(f"unknown method {method!r}; choose from {_METHODS}")
    n = a.shape[1]
    if n == 0:
        raise ValueError("at least one bucket is required")
    if n == 1:
        return np.ones(1)

    if method in ("penalty", "scipy-nnls"):
        return _penalty_solution(a, s, penalty, use_scipy=True)
    if method == "penalty-own":
        return _penalty_solution(a, s, penalty, use_scipy=False)
    if method == "pgd":
        start = np.full(n, 1.0 / n)
        return _fista(a, s, start, max_iter, tol)
    # "active-set": penalty warm start polished by the exact method.
    start = _penalty_solution(a, s, penalty, use_scipy=True)
    return _fista(a, s, start, max_iter // 2, tol)
