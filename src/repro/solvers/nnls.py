"""Non-negative least squares: Lawson–Hanson active-set algorithm.

The paper's weight-estimation phase cites scipy's NNLS solver [reference 1
in the paper].  We ship our own implementation of the same classical
algorithm (Lawson & Hanson 1974) so the library is self-contained, and use
scipy's as an optional cross-check in the tests.

Solves ``min_x ||A x - b||_2`` subject to ``x >= 0``.

Unlike scipy's compiled solver, this implementation accepts a **warm
start** (``x0``): the passive set is seeded from the support of ``x0``
instead of starting empty.  Lawson–Hanson moves one variable per outer
iteration, so a cold solve needs one iteration per support element; a
warm solve whose support barely changes terminates after a handful.
That property is what makes incremental re-fits cheap (see
``docs/online_learning.md``).
"""

from __future__ import annotations

import numpy as np

__all__ = ["nnls"]


def _solve_passive(
    a: np.ndarray, b: np.ndarray, x: np.ndarray, passive: np.ndarray, tol: float
) -> np.ndarray:
    """Inner Lawson–Hanson loop: least squares restricted to the passive
    set, backtracking (and shrinking the set) until the solution is
    feasible.  Mutates ``passive`` in place; returns the new ``x``."""
    n = x.shape[0]
    while passive.any():
        idx = np.nonzero(passive)[0]
        sub = a[:, idx]
        z, *_ = np.linalg.lstsq(sub, b, rcond=None)
        if np.all(z > tol):
            x = np.zeros(n)
            x[idx] = z
            return x
        # Step toward z only as far as feasibility allows.
        current = x[idx]
        negative = z <= tol
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(negative, current / (current - z), np.inf)
        alpha = float(np.min(ratios))
        alpha = min(max(alpha, 0.0), 1.0)
        x_new = np.zeros(n)
        x_new[idx] = current + alpha * (z - current)
        x = x_new
        newly_zero = idx[x[idx] <= tol]
        passive[newly_zero] = False
        x[newly_zero] = 0.0
    return np.zeros(n)


def nnls(
    a: np.ndarray,
    b: np.ndarray,
    max_iter: int | None = None,
    tol: float = 1e-11,
    x0: np.ndarray | None = None,
) -> np.ndarray:
    """Lawson–Hanson NNLS.

    Parameters
    ----------
    a:
        Design matrix of shape ``(m, n)``.
    b:
        Target vector of shape ``(m,)``.
    max_iter:
        Iteration cap (default ``3 * n``).
    tol:
        Dual-feasibility tolerance on the gradient.
    x0:
        Optional warm start.  Its support (entries ``> tol``) seeds the
        passive set and its values seed the backtracking state, so a
        solve whose active set barely moved resumes in O(changed
        support) outer iterations.  Must be shape ``(n,)``; negative
        entries are clipped to zero.  The result is the same NNLS
        optimum the cold solve finds (active-set methods terminate at
        an exact KKT point regardless of the starting set).

    Returns
    -------
    The non-negative least-squares solution ``x`` with shape ``(n,)``.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.ndim != 2:
        raise ValueError(f"a must be 2-D, got shape {a.shape}")
    m, n = a.shape
    if b.shape != (m,):
        raise ValueError(f"b must have shape ({m},), got {b.shape}")
    if max_iter is None:
        max_iter = max(3 * n, 30)

    x = np.zeros(n)
    passive = np.zeros(n, dtype=bool)  # the "P" set
    if x0 is not None:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != (n,):
            raise ValueError(f"x0 must have shape ({n},), got {x0.shape}")
        if np.all(np.isfinite(x0)):
            seeded = np.maximum(x0, 0.0)
            support = seeded > tol
            if support.any():
                passive = support
                x = np.where(support, seeded, 0.0)
                x = _solve_passive(a, b, x, passive, tol)
    residual = b - a @ x
    gradient = a.T @ residual

    iteration = 0
    while iteration < max_iter:
        iteration += 1
        # Optimality: all inactive variables have non-positive gradient.
        candidates = ~passive & (gradient > tol)
        if not candidates.any():
            break
        # Move the most promising variable into the passive set.
        j = int(np.argmax(np.where(candidates, gradient, -np.inf)))
        passive[j] = True
        x = _solve_passive(a, b, x, passive, tol)
        residual = b - a @ x
        gradient = a.T @ residual
    return x
