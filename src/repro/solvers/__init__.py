"""Optimisation routines for the weight-estimation phase (Eq. 8).

Every learner in this repository fits bucket weights by solving

.. math::
    \\min_w \\; \\|A w - s\\|_2^2 \\quad
    \\text{s.t.}\\; \\sum_j w_j = 1,\\; 0 \\le w_j \\le 1,

a convex quadratic program over the probability simplex (Eq. 8 of the
paper).  :mod:`~repro.solvers.simplex_ls` offers three interchangeable
methods (penalised NNLS — the paper's choice via scipy's solver [1]; exact
projected gradient; active set), :mod:`~repro.solvers.nnls` contains our own
Lawson–Hanson implementation so the library has no hidden dependencies,
:mod:`~repro.solvers.linf` trains under the L∞ objective (Section 4.6), and
:mod:`~repro.solvers.maxent` solves the maximum-entropy program used by the
ISOMER baseline.
"""

from repro.solvers.nnls import nnls
from repro.solvers.simplex_ls import (
    SolveAttempt,
    SolveReport,
    fit_simplex_weights,
    fit_simplex_weights_robust,
    project_to_simplex,
)
from repro.solvers.linf import fit_simplex_weights_linf
from repro.solvers.maxent import fit_maxent_weights

__all__ = [
    "nnls",
    "fit_simplex_weights",
    "fit_simplex_weights_robust",
    "SolveAttempt",
    "SolveReport",
    "project_to_simplex",
    "fit_simplex_weights_linf",
    "fit_maxent_weights",
]
