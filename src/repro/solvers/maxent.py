"""Maximum-entropy weight fitting (for the ISOMER baseline).

ISOMER [Srivastava et al., ICDE 2006] assigns bucket weights by choosing
the *maximum-entropy* distribution consistent with the observed query
selectivities:

.. math::
    \\max_w \\; -\\sum_j w_j \\log w_j \\quad \\text{s.t.}\\;
    (A w)_i = s_i \\; \\forall i, \\quad \\mathbf{1}^T w = 1, \\; w \\ge 0.

Because real feedback can be mutually inconsistent (and our design matrices
include fractional coverage), we solve the standard *soft-constrained* dual:
with Lagrange multipliers λ the primal optimum has the Gibbs form
``w_j ∝ exp(Σ_i λ_i A_ij)``, and λ minimises the convex dual

.. math::
    g(λ) = \\log Z(λ) - λ^T s + \\tfrac{1}{2σ^2}\\|λ\\|^2,

where the quadratic term (a Gaussian prior) converts hard constraints into
soft ones, guaranteeing a finite optimum even for inconsistent feedback.
Minimised by L-BFGS with an analytic gradient.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

__all__ = ["fit_maxent_weights"]


def fit_maxent_weights(
    a: np.ndarray,
    s: np.ndarray,
    slack: float = 1e-3,
    max_iter: int = 500,
) -> np.ndarray:
    """Maximum-entropy weights consistent (softly) with ``A w = s``.

    Parameters
    ----------
    a:
        Constraint matrix ``(n_queries, n_buckets)`` of per-bucket coverage
        fractions.
    s:
        Observed selectivities.
    slack:
        Strength of the Gaussian prior on the multipliers (``1/(2σ²)`` with
        ``σ² = 1/(2·slack)``); larger = softer constraints.

    Returns
    -------
    A probability vector ``w`` maximising entropy subject to the soft
    constraints.
    """
    a = np.asarray(a, dtype=float)
    s = np.asarray(s, dtype=float)
    if a.ndim != 2:
        raise ValueError(f"a must be 2-D, got shape {a.shape}")
    m, n = a.shape
    if s.shape != (m,):
        raise ValueError(f"s must have shape ({m},), got {s.shape}")
    if n == 0:
        raise ValueError("at least one bucket is required")
    if n == 1:
        return np.ones(1)
    if slack <= 0:
        raise ValueError(f"slack must be positive, got {slack}")

    def gibbs_weights(lam: np.ndarray) -> tuple[np.ndarray, float]:
        scores = a.T @ lam  # (n,)
        scores -= scores.max()  # numerical stabilisation
        unnormalised = np.exp(scores)
        z = float(unnormalised.sum())
        return unnormalised / z, np.log(z) + 0.0

    def dual(lam: np.ndarray) -> tuple[float, np.ndarray]:
        scores = a.T @ lam
        shift = scores.max()
        unnormalised = np.exp(scores - shift)
        z = float(unnormalised.sum())
        w = unnormalised / z
        log_z = np.log(z) + shift
        value = log_z - float(lam @ s) + 0.5 * slack * float(lam @ lam)
        gradient = a @ w - s + slack * lam
        return value, gradient

    lam0 = np.zeros(m)
    result = minimize(
        dual, lam0, jac=True, method="L-BFGS-B", options={"maxiter": max_iter}
    )
    w, _ = gibbs_weights(result.x)
    return w
