"""Setuptools shim.

The container used for this reproduction has no ``wheel`` package and no
network access, which breaks PEP-517 editable installs
(``pip install -e .`` fails at ``bdist_wheel``).  This shim lets
``python setup.py develop`` provide the editable install instead; all real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
